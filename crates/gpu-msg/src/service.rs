//! Sustained-operation model of the resident communication kernel.
//!
//! The paper's motivation is *message rate*: "due to their highly
//! parallel nature, GPUs could be expected to exchange significantly more
//! messages than CPUs … the matching of messages becomes a major limiter
//! for high message rates." This module turns the batch matching rates
//! into an operational statement: a communication kernel servicing a
//! continuous arrival stream, with the queue dynamics that implies.
//!
//! The model is a simple batch-service queue in *simulated device time*:
//! messages (with matching pre-posted receives) arrive at a configured
//! rate; whenever work is pending, the kernel matches a batch of up to
//! `max_batch` entries, which occupies the device for the simulated
//! duration the matcher reports; arrivals accumulate meanwhile. Below
//! saturation the queue stays bounded; past the matcher's rate ceiling it
//! grows without bound — [`ServiceReport::saturated`] flags it.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

/// Which matching engine the service kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEngine {
    /// Fully compliant matrix matching.
    Matrix,
    /// Rank-partitioned with this many queues.
    Partitioned(usize),
    /// Two-level hash (no ordering).
    Hash,
}

/// Service simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Offered load in messages per second of device time.
    pub arrival_rate: f64,
    /// Largest batch the kernel matches at once.
    pub max_batch: usize,
    /// The kernel aggregates at least this many pending messages before
    /// launching a matching pass (or fewer if no more traffic is due) —
    /// the batching any real communication kernel applies to amortise
    /// launch overhead.
    pub batch_threshold: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Engine to run.
    pub engine: ServiceEngine,
    /// Workload seed.
    pub seed: u64,
}

/// Outcome of a service simulation.
#[derive(Debug, Clone, Copy)]
pub struct ServiceReport {
    /// Messages matched per second of simulated time.
    pub sustained_rate: f64,
    /// Offered arrivals per second (echoed from the config).
    pub offered_rate: f64,
    /// Mean pending-queue depth sampled at batch boundaries.
    pub mean_depth: f64,
    /// Maximum pending-queue depth observed.
    pub max_depth: usize,
    /// Fraction of device time spent matching (utilisation).
    pub utilisation: f64,
    /// True if the backlog was still growing when time ran out.
    pub saturated: bool,
    /// Batches executed.
    pub batches: u64,
}

/// Run the service model.
pub fn simulate_service(generation: GpuGeneration, cfg: ServiceConfig) -> ServiceReport {
    // A large pool of workload tuples reused batch by batch.
    let pool = WorkloadSpec {
        len: cfg.max_batch,
        peers: 64,
        tags: 1 << 12,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate();

    let mut now = 0.0f64; // simulated seconds
    let mut arrived = 0u64; // messages that have arrived by `now`
    let mut matched = 0u64;
    let mut busy = 0.0f64;
    let mut depth_samples: Vec<f64> = Vec::new();
    let mut max_depth = 0usize;
    let mut batches = 0u64;

    while now < cfg.duration {
        let due = (cfg.arrival_rate * now) as u64;
        arrived = arrived.max(due);
        let pending = (arrived - matched) as usize;
        depth_samples.push(pending as f64);
        max_depth = max_depth.max(pending);

        let threshold = cfg.batch_threshold.clamp(1, cfg.max_batch);
        if pending < threshold {
            // Aggregate: idle until enough arrivals are due (or give the
            // stragglers a final pass at end of time).
            let needed = matched + threshold as u64;
            // Half-an-arrival epsilon: landing exactly on the N-th
            // arrival time can truncate back to N-1 in float and stall
            // the clock.
            let next = (needed as f64 + 0.5) / cfg.arrival_rate;
            if next > cfg.duration {
                if pending == 0 {
                    break;
                }
                // Drain the tail.
            } else {
                now = next;
                continue;
            }
        }

        let batch = pending.min(cfg.max_batch);
        if batch == 0 {
            break;
        }
        // Slice a batch out of the pool (wrapping).
        let start = (matched as usize) % pool.msgs.len();
        let mut msgs: Vec<Envelope> = Vec::with_capacity(batch);
        for k in 0..batch {
            msgs.push(pool.msgs[(start + k) % pool.msgs.len()]);
        }
        let reqs: Vec<RecvRequest> = msgs
            .iter()
            .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
            .collect();

        // Device buffers accumulate across launches (the simulator has
        // no free); a fresh device per batch models a steady-state
        // allocation pool without unbounded growth.
        let mut gpu = Gpu::new(generation);
        let report = match cfg.engine {
            ServiceEngine::Matrix => {
                MatrixMatcher::default().match_iterative(&mut gpu, &msgs, &reqs)
            }
            ServiceEngine::Partitioned(q) => PartitionedMatcher::new(q)
                .match_batch(&mut gpu, &msgs, &reqs)
                .expect("no wildcards in service traffic"),
            ServiceEngine::Hash => HashMatcher::default()
                .match_batch(&mut gpu, &msgs, &reqs)
                .expect("no wildcards in service traffic"),
        };
        debug_assert_eq!(report.matches as usize, batch);
        matched += report.matches;
        busy += report.seconds;
        now += report.seconds;
        batches += 1;
    }

    let elapsed = now.max(f64::MIN_POSITIVE);
    let final_backlog = arrived.saturating_sub(matched) as usize;
    ServiceReport {
        sustained_rate: matched as f64 / elapsed,
        offered_rate: cfg.arrival_rate,
        mean_depth: depth_samples.iter().sum::<f64>() / depth_samples.len().max(1) as f64,
        max_depth,
        utilisation: (busy / elapsed).min(1.0),
        saturated: final_backlog > 2 * cfg.max_batch
            && final_backlog as f64 > 0.05 * arrived as f64,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, engine: ServiceEngine) -> ServiceConfig {
        ServiceConfig {
            arrival_rate: rate,
            max_batch: 1024,
            batch_threshold: 256,
            duration: 0.004,
            engine,
            seed: 5,
        }
    }

    #[test]
    fn below_saturation_the_queue_stays_bounded() {
        // 1 M msgs/s against a ~4.7 M/s matrix matcher: comfortable.
        let r = simulate_service(GpuGeneration::PascalGtx1080, cfg(1.0e6, ServiceEngine::Matrix));
        assert!(!r.saturated, "{r:?}");
        assert!(r.utilisation < 0.75, "utilisation {}", r.utilisation);
        assert!((r.sustained_rate - 1.0e6).abs() / 1.0e6 < 0.15, "{r:?}");
    }

    #[test]
    fn past_saturation_the_backlog_grows() {
        // 20 M msgs/s against the compliant matcher: hopeless.
        let r = simulate_service(GpuGeneration::PascalGtx1080, cfg(20.0e6, ServiceEngine::Matrix));
        assert!(r.saturated, "{r:?}");
        assert!(r.utilisation > 0.95, "the kernel must be pegged: {r:?}");
        // The sustained rate caps at the matcher's ceiling.
        assert!(r.sustained_rate < 8.0e6, "{r:?}");
    }

    #[test]
    fn relaxed_engines_raise_the_ceiling() {
        // The same 20 M msgs/s the matrix matcher drowned under is easy
        // for the hash engine.
        let r = simulate_service(GpuGeneration::PascalGtx1080, cfg(20.0e6, ServiceEngine::Hash));
        assert!(!r.saturated, "{r:?}");
        // And partitioning lands in between.
        let p = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(20.0e6, ServiceEngine::Partitioned(16)),
        );
        assert!(!p.saturated, "{p:?}");
    }

    #[test]
    fn utilisation_tracks_offered_load() {
        let lo = simulate_service(GpuGeneration::PascalGtx1080, cfg(0.5e6, ServiceEngine::Matrix));
        let hi = simulate_service(GpuGeneration::PascalGtx1080, cfg(3.0e6, ServiceEngine::Matrix));
        assert!(
            hi.utilisation > lo.utilisation * 2.0,
            "lo {} hi {}",
            lo.utilisation,
            hi.utilisation
        );
    }
}
