//! Sustained-operation model of the resident communication kernel.
//!
//! The paper's motivation is *message rate*: "due to their highly
//! parallel nature, GPUs could be expected to exchange significantly more
//! messages than CPUs … the matching of messages becomes a major limiter
//! for high message rates." This module turns the batch matching rates
//! into an operational statement: a communication kernel servicing a
//! continuous arrival stream, with the queue dynamics that implies.
//!
//! Two tiers:
//!
//! * [`simulate_service`] — the original single-queue batch-service
//!   model: one resident kernel, one bounded pending queue, one engine.
//! * [`ShardedMatchService`] — N shards, each owning a persistent
//!   [`Gpu`] (one communication SM's worth of matching capacity) and a
//!   bounded pending queue. Traffic is keyed to shards by
//!   [`msg_match::ShardPlacement`] (communicator + source-rank range),
//!   each shard's engine is pinned at placement time via
//!   [`msg_match::MatchEngine`], and admission control spills arrivals
//!   that find the shard's queue full. Per-shard counters and
//!   histograms land in a [`crate::metrics::ServiceMetrics`] snapshot.
//!
//! Both models run in *simulated device time*: messages (with matching
//! pre-posted receives) arrive at a configured rate; whenever enough
//! work is pending the kernel matches a batch of up to `max_batch`
//! entries, which occupies the device for the simulated duration the
//! matcher reports; arrivals accumulate meanwhile. Below saturation the
//! queue stays bounded; past the matcher's rate ceiling it grows (or
//! spills) without bound — the reports flag it.
//!
//! The sharded tier additionally survives *shard failures*. With a
//! [`FaultTolerance`] attached, a [`FaultPlan`] injects crashes, hangs
//! and slow windows at simulated-time points; each shard periodically
//! checkpoints its stream watermarks and journals admitted arrivals
//! ([`crate::recovery`]), so a crashed shard restarts a fresh device,
//! restores the snapshot and replays the journal with duplicate
//! suppression — the committed match set is byte-identical to a
//! fault-free run (exactly-once delivery). A [`Supervisor`] drives
//! health checks on the same clock, failing a down shard's streams over
//! to the healthiest peer via [`ShardPlacement::redirect`] and shedding
//! deadline-expired work under sustained overload.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::fault::FaultPlan;
use crate::metrics::{OverflowStats, SchedulerProfile, ServiceMetrics, ShardWallProfile};
use crate::recovery::RecoveryConfig;
use crate::sched::{self, Scheduler};
use crate::supervisor::SupervisorConfig;

/// Which matching engine the service kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEngine {
    /// Fully compliant matrix matching.
    Matrix,
    /// Rank-partitioned with this many queues.
    Partitioned(usize),
    /// Two-level hash (no ordering).
    Hash,
}

impl ServiceEngine {
    fn choice(self) -> EngineChoice {
        match self {
            ServiceEngine::Matrix => EngineChoice::Matrix,
            ServiceEngine::Partitioned(queues) => EngineChoice::Partitioned { queues },
            ServiceEngine::Hash => EngineChoice::Hash,
        }
    }
}

/// Display form of an engine choice, used in metrics snapshots.
pub fn engine_label(choice: EngineChoice) -> String {
    match choice {
        EngineChoice::Matrix => "matrix".to_string(),
        EngineChoice::Partitioned { queues } => format!("partitioned({queues})"),
        EngineChoice::Hash => "hash".to_string(),
    }
}

/// Ordering strictness of an engine (matrix preserves everything, hash
/// nothing) — the supervisor falls a failover target back to the
/// *stricter* of its own and the failed shard's engine, so inherited
/// streams keep the ordering their relaxation level promised.
pub(crate) fn strictness(choice: EngineChoice) -> u8 {
    match choice {
        EngineChoice::Matrix => 2,
        EngineChoice::Partitioned { .. } => 1,
        EngineChoice::Hash => 0,
    }
}

/// Service simulation parameters (single-queue model).
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Offered load in messages per second of device time.
    pub arrival_rate: f64,
    /// Largest batch the kernel matches at once.
    pub max_batch: usize,
    /// The kernel aggregates at least this many pending messages before
    /// launching a matching pass (or fewer if no more traffic is due) —
    /// the batching any real communication kernel applies to amortise
    /// launch overhead.
    pub batch_threshold: usize,
    /// Bounded pending queue: arrivals beyond this backlog spill to the
    /// (unmodelled) slow host path and are only counted.
    pub queue_capacity: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Engine to run.
    pub engine: ServiceEngine,
    /// Workload seed.
    pub seed: u64,
}

/// Outcome of a service simulation.
#[derive(Debug, Clone, Copy)]
pub struct ServiceReport {
    /// Messages matched per second of simulated time.
    pub sustained_rate: f64,
    /// Offered arrivals per second (echoed from the config).
    pub offered_rate: f64,
    /// Mean pending-queue depth sampled at batch boundaries.
    pub mean_depth: f64,
    /// Maximum pending-queue depth observed.
    pub max_depth: usize,
    /// Fraction of device time spent matching (utilisation).
    pub utilisation: f64,
    /// True if the service was in steady-state overload when time ran
    /// out: the backlog was still growing, or admission control was
    /// still spilling in the final stretch of the run.
    pub saturated: bool,
    /// Arrivals the service gave up on (spilled at admission or shed).
    pub overflow: OverflowStats,
    /// Batches executed.
    pub batches: u64,
}

/// Run the single-queue service model.
pub fn simulate_service(generation: GpuGeneration, cfg: ServiceConfig) -> ServiceReport {
    // A large pool of workload tuples reused batch by batch.
    let pool = WorkloadSpec {
        len: cfg.max_batch,
        peers: 64,
        tags: 1 << 12,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate();

    let capacity = cfg.queue_capacity.max(cfg.max_batch);
    let mut now = 0.0f64; // simulated seconds
    let mut seen = 0u64; // arrivals walked through admission by `now`
    let mut admitted = 0u64;
    let mut matched = 0u64;
    let mut overflow = OverflowStats::default();
    let mut last_spill = f64::NEG_INFINITY;
    let mut busy = 0.0f64;
    let mut depth_samples: Vec<f64> = Vec::new();
    let mut max_depth = 0usize;
    let mut batches = 0u64;

    // One resident device for the whole run — the communication kernel
    // owns its SM and its allocation pool; per-batch reclaim keeps the
    // arena bounded without paying a fresh device per launch.
    let mut gpu = Gpu::new(generation);
    let engine = MatchEngine::default();
    let choice = cfg.engine.choice();

    while now < cfg.duration {
        // Admission: walk every arrival due by `now` through the
        // bounded queue; overflow spills (counted, not queued).
        let due = (cfg.arrival_rate * now) as u64;
        while seen < due {
            if ((admitted - matched) as usize) < capacity {
                admitted += 1;
            } else {
                overflow.spilled += 1;
                last_spill = (seen + 1) as f64 / cfg.arrival_rate;
            }
            seen += 1;
        }
        let pending = (admitted - matched) as usize;
        depth_samples.push(pending as f64);
        max_depth = max_depth.max(pending);

        let threshold = cfg.batch_threshold.clamp(1, cfg.max_batch);
        if pending < threshold {
            // Aggregate: idle until enough arrivals are due (or give the
            // stragglers a final pass at end of time).
            let need = (threshold - pending) as u64;
            // Half-an-arrival epsilon: landing exactly on the N-th
            // arrival time can truncate back to N-1 in float and stall
            // the clock.
            let next = ((seen + need) as f64 + 0.5) / cfg.arrival_rate;
            if next > cfg.duration {
                if pending == 0 {
                    break;
                }
                // Drain the tail.
            } else {
                now = next;
                continue;
            }
        }

        let batch = pending.min(cfg.max_batch);
        if batch == 0 {
            break;
        }
        // Slice a batch out of the pool (wrapping).
        let start = (matched as usize) % pool.msgs.len();
        let mut msgs: Vec<Envelope> = Vec::with_capacity(batch);
        for k in 0..batch {
            msgs.push(pool.msgs[(start + k) % pool.msgs.len()]);
        }
        let reqs: Vec<RecvRequest> = msgs
            .iter()
            .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
            .collect();

        gpu.reset_memory();
        let report = engine
            .match_with(&mut gpu, choice, &msgs, &reqs)
            .expect("no wildcards in service traffic");
        debug_assert_eq!(report.matches as usize, batch);
        matched += report.matches;
        busy += report.seconds;
        now += report.seconds;
        batches += 1;
    }

    let elapsed = now.max(f64::MIN_POSITIVE);
    let final_backlog = admitted.saturating_sub(matched) as usize;
    ServiceReport {
        sustained_rate: matched as f64 / elapsed,
        offered_rate: cfg.arrival_rate,
        mean_depth: depth_samples.iter().sum::<f64>() / depth_samples.len().max(1) as f64,
        max_depth,
        utilisation: (busy / elapsed).min(1.0),
        saturated: (final_backlog > 2 * cfg.max_batch && final_backlog as f64 > 0.05 * seen as f64)
            || last_spill >= 0.9 * cfg.duration,
        overflow,
        batches,
    }
}

/// How a sharded service picks each shard's engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEnginePolicy {
    /// Pin the same engine on every shard.
    Fixed(ServiceEngine),
    /// Choose per shard, from the traffic sample the shard owns, under
    /// this relaxation level (via [`MatchEngine::choose`]).
    Auto(RelaxationConfig),
}

/// Parameters for the sharded streaming service.
#[derive(Debug, Clone, Copy)]
pub struct ShardedServiceConfig {
    /// Number of shards (each owns a persistent device).
    pub shards: usize,
    /// Aggregate offered load in messages per second of device time.
    pub arrival_rate: f64,
    /// Largest batch a shard matches at once.
    pub max_batch: usize,
    /// A shard aggregates at least this many pending messages before
    /// launching (or fewer when draining the tail).
    pub batch_threshold: usize,
    /// Bounded pending queue per shard: arrivals beyond this backlog
    /// spill to the (unmodelled) slow host path and are only counted.
    pub queue_capacity: usize,
    /// Simulated duration in seconds (arrivals stop at this point).
    pub duration: f64,
    /// Keep servicing after `duration` until every admitted arrival has
    /// committed, every recovery has finished and every failover has
    /// been handed back. Off (the default), the run stops once in-flight
    /// work commits, leaving any backlog unmatched — the right model for
    /// rate measurements. The exactly-once differential tests turn it on
    /// so fault-free and faulty runs complete the same set.
    pub drain: bool,
    /// Per-shard engine policy.
    pub policy: ShardEnginePolicy,
    /// Communicators in the traffic mix.
    pub comms: u16,
    /// Distinct source ranks per communicator.
    pub peers: u32,
    /// Workload seed.
    pub seed: u64,
    /// Record a span timeline per shard. Off by default: the hot path
    /// then holds no recorder and performs no tracing work or allocation.
    pub trace: bool,
    /// Ring capacity (events) of each shard's flight recorder,
    /// preallocated once at build time.
    pub trace_capacity: usize,
    /// Causal flow tracing samples one in this many messages (0 and 1
    /// both mean "every message"). Membership is a pure hash of
    /// `(seed, flow id)` — never arrival order — so the sampled set is
    /// identical across runs and schedulers; 1-in-64 keeps bounded
    /// recorders useful at 10 M msg/s.
    pub flow_sample_every: u32,
    /// How shard domains execute: one merged clock on the calling
    /// thread, or one OS thread per conflict group synchronized at
    /// supervisor barriers. Artefacts are byte-identical either way
    /// (`tests/parallel_differential.rs` pins this); only wall-clock
    /// time differs.
    pub scheduler: Scheduler,
    /// Screen each dispatch batch through counting-digest pre-filters
    /// before launching (see [`msg_match::prefilter`]). Service streams
    /// are self-matching, so in this path the screen never rejects —
    /// artefacts are byte-identical on or off — but the rejection
    /// counter it feeds (`shard_prefilter_rejections_total`) is the
    /// signal an operator watches for mismatched traffic.
    pub prefilter: bool,
}

impl Default for ShardedServiceConfig {
    fn default() -> Self {
        ShardedServiceConfig {
            shards: 4,
            arrival_rate: 4.0e6,
            max_batch: 1024,
            batch_threshold: 256,
            queue_capacity: 1 << 14,
            duration: 0.002,
            drain: false,
            policy: ShardEnginePolicy::Fixed(ServiceEngine::Matrix),
            comms: 1,
            peers: 64,
            seed: 5,
            trace: false,
            trace_capacity: 4096,
            flow_sample_every: 64,
            scheduler: Scheduler::GlobalClock,
            prefilter: true,
        }
    }
}

/// The fault-tolerance stack attached to a [`ShardedMatchService`]:
/// what breaks, how shards recover, and who supervises.
///
/// Carried outside the `Copy` [`ShardedServiceConfig`] (a fault plan
/// owns its event list) and attached via
/// [`ShardedMatchService::set_fault_tolerance`]. With none attached the
/// service pays zero overhead: no checkpoints, no journal bookkeeping
/// beyond watermark counters, no supervisor ticks.
#[derive(Debug, Clone, Default)]
pub struct FaultTolerance {
    /// The deterministic fault schedule ([`FaultPlan::none`] for a
    /// fault-free run that still exercises checkpoints).
    pub plan: FaultPlan,
    /// Checkpoint cadence and recovery costs.
    pub recovery: RecoveryConfig,
    /// Health-check/failover/shedding policy; `None` leaves shards to
    /// recover on their own with no rerouting and no shedding.
    pub supervisor: Option<SupervisorConfig>,
}

/// Outcome of a sharded service run.
#[derive(Debug, Clone)]
pub struct ShardedServiceReport {
    /// Aggregate service-level view (comparable to [`simulate_service`]).
    pub aggregate: ServiceReport,
    /// Per-shard observability snapshot.
    pub metrics: ServiceMetrics,
    /// Per-stream committed seqs in delivery order, recorded only when
    /// [`ShardedMatchService::set_record_completions`] was turned on —
    /// the artefact the exactly-once differential tests compare.
    pub completions: Option<Vec<Vec<u64>>>,
    /// Wall-clock (host) seconds the run took — *not* deterministic,
    /// kept out of [`ServiceMetrics`] so metric snapshots stay
    /// byte-comparable across schedulers and runs.
    pub wall_seconds: f64,
    /// Dual-clock scheduler profile: per-shard wall-time bucket
    /// decompositions (compute / barrier-wait / backpressure /
    /// supervisor-sync). Wall-clock data, so it also lives outside
    /// [`ServiceMetrics`] and exports to its own Prometheus document.
    pub scheduler_profile: crate::metrics::SchedulerProfile,
}

/// One shard: a persistent device and a pinned engine. The traffic it
/// serves lives in [`ServiceStream`] slots, keyed to shards by
/// [`ShardPlacement`] — so failover and migration move *streams*, never
/// devices.
pub(crate) struct ServiceShard {
    pub(crate) gpu: Gpu,
    pub(crate) choice: EngineChoice,
}

/// One stream slot: an arrival process and the tuple pool it replays.
pub(crate) struct ServiceStream {
    /// The slot's tuple pool, replayed cyclically as its arrivals:
    /// stream entry `seq` carries envelope `msgs[seq % len]`, so message
    /// identity is a pure function of `(stream, seq)` — which is what
    /// makes journal replay (and migration transfer) reproduce the
    /// fault-free matches.
    pub(crate) msgs: Vec<Envelope>,
    /// Share of the aggregate arrival rate this slot receives.
    pub(crate) rate: f64,
    /// Owning tenant id (0 for the implicit single tenant).
    pub(crate) tenant: u32,
    /// QoS admission gate; `None` admits on raw queue capacity.
    pub(crate) qos: Option<crate::tenancy::StreamQos>,
    /// Arrival process shape.
    pub(crate) pattern: crate::tenancy::ArrivalPattern,
}

/// A sharded streaming match service over persistent devices.
///
/// Built once, run many times: [`run`](Self::run) resets all queue,
/// stream, placement and metric state but keeps the shard devices and
/// engine pins, so repeated runs with the same config are bit-identical.
pub struct ShardedMatchService {
    cfg: ShardedServiceConfig,
    placement: ShardPlacement,
    shards: Vec<ServiceShard>,
    streams: Vec<ServiceStream>,
    /// The slot → home-shard map at construction, restored before every
    /// run so live resharding in one run never leaks into the next.
    initial_assignments: Vec<usize>,
    /// Tenancy layer (QoS classes, fill limits, reshard policy);
    /// `None` runs the legacy single-tenant admission path.
    tenancy: Option<crate::tenancy::TenancyConfig>,
    fault_tolerance: Option<FaultTolerance>,
    record_completions: bool,
    /// Coordinator-track recorder for scheduler epoch spans, present
    /// when tracing is on. Kept apart from the shard recorders so the
    /// shard timeline stays byte-identical across schedulers (epoch
    /// grouping legitimately differs between them).
    sched_rec: Option<obs::sync::SharedSpanRecorder>,
    /// Wall-clock trace tracks captured from the last run's profiler
    /// (empty before the first traced run). Exported separately from
    /// the virtual-time documents; see
    /// [`wall_trace_json`](Self::wall_trace_json).
    wall_tracks: Vec<(String, obs::SpanRecorder)>,
}

impl ShardedMatchService {
    /// Build a service with hash placement over `cfg.shards` shards.
    pub fn new(generation: GpuGeneration, cfg: ShardedServiceConfig) -> Self {
        Self::with_placement(generation, cfg, ShardPlacement::hashed(cfg.shards))
    }

    /// Build a service with an explicit placement (rule-keyed by
    /// communicator and rank range; see [`ShardPlacement`]).
    ///
    /// # Panics
    /// Panics if `placement.shards != cfg.shards` or `cfg.shards == 0`.
    pub fn with_placement(
        generation: GpuGeneration,
        cfg: ShardedServiceConfig,
        placement: ShardPlacement,
    ) -> Self {
        assert!(cfg.shards > 0, "a service needs at least one shard");
        assert_eq!(
            placement.shards, cfg.shards,
            "placement shard count must match the config"
        );

        // Traffic sample: per-communicator workloads, interleaved so
        // every batch window sees the full communicator mix.
        let per_comm = (4 * cfg.max_batch / cfg.comms.max(1) as usize).max(64);
        let comm_pools: Vec<Vec<Envelope>> = (0..cfg.comms.max(1))
            .map(|c| {
                WorkloadSpec {
                    len: per_comm,
                    peers: cfg.peers,
                    tags: 1 << 12,
                    comm: c,
                    seed: cfg.seed.wrapping_add(c as u64),
                    ..Default::default()
                }
                .generate()
                .msgs
            })
            .collect();
        let mut sample: Vec<Envelope> = Vec::with_capacity(per_comm * comm_pools.len());
        for i in 0..per_comm {
            for pool in &comm_pools {
                sample.push(pool[i]);
            }
        }

        let sample_reqs: Vec<RecvRequest> = sample
            .iter()
            .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
            .collect();
        let engine = MatchEngine::default();
        let choices: Vec<EngineChoice> = match cfg.policy {
            ShardEnginePolicy::Fixed(e) => vec![e.choice(); cfg.shards],
            ShardEnginePolicy::Auto(relax) => {
                placement.plan_engines(&engine, relax, &sample, &sample_reqs)
            }
        };

        let parts = placement.split(&sample, &sample_reqs);
        let total = sample.len() as f64;
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut streams = Vec::with_capacity(cfg.shards);
        for (idx, ((msg_ids, _), choice)) in parts.into_iter().zip(choices).enumerate() {
            let msgs: Vec<Envelope> = msg_ids.iter().map(|&i| sample[i as usize]).collect();
            let rate = cfg.arrival_rate * msgs.len() as f64 / total;
            let mut gpu = Gpu::new(generation);
            if cfg.trace {
                gpu.enable_tracing(obs::tracks::shard(idx), cfg.trace_capacity);
            }
            shards.push(ServiceShard { gpu, choice });
            // One stream slot per shard, homed 1:1 — the legacy shape.
            streams.push(ServiceStream {
                msgs,
                rate,
                tenant: 0,
                qos: None,
                pattern: crate::tenancy::ArrivalPattern::Uniform,
            });
        }

        let initial_assignments: Vec<usize> = (0..placement.slots())
            .map(|j| placement.home_of_slot(j))
            .collect();
        let sched_rec = cfg.trace.then(|| {
            obs::sync::SharedSpanRecorder::new(obs::tracks::COORDINATOR, cfg.trace_capacity)
        });
        ShardedMatchService {
            cfg,
            placement,
            shards,
            streams,
            initial_assignments,
            tenancy: None,
            fault_tolerance: None,
            record_completions: false,
            sched_rec,
            wall_tracks: Vec::new(),
        }
    }

    /// Build a multi-tenant service: tenant stream slots homed by
    /// [`crate::tenancy::TenancyConfig::assignments`], per-stream QoS
    /// admission, and (optionally) live resharding.
    ///
    /// Each slot carries `1 / streams` of its tenant's share of the
    /// aggregate arrival rate and an even slice of the tenant's
    /// token-bucket quota. Slot workloads are generated per slot with
    /// the tenant id as the communicator, so tenants never share
    /// match-time state — isolation is enforced at admission only.
    ///
    /// # Panics
    /// Panics if the tenancy config is invalid for `cfg.shards`.
    pub fn with_tenancy(
        generation: GpuGeneration,
        cfg: ShardedServiceConfig,
        tenancy: crate::tenancy::TenancyConfig,
    ) -> Self {
        use crate::tenancy::{StreamQos, TokenBucket};
        assert!(cfg.shards > 0, "a service needs at least one shard");
        tenancy.validate(cfg.shards);
        let assignments = tenancy.assignments(cfg.shards);
        let slot_tenants = tenancy.slot_tenants();
        let placement = ShardPlacement::with_assignments(cfg.shards, assignments.clone());
        let total_share = tenancy.total_share();
        let slots = assignments.len();
        let per_slot = (4 * cfg.max_batch / slots.max(1)).max(64);

        // Per-slot pools: tenant id as the communicator keys tenant
        // traffic apart all the way into the match kernels' tuples.
        let mut streams: Vec<ServiceStream> = Vec::with_capacity(slots);
        for (slot, (&tenant, &_home)) in slot_tenants.iter().zip(assignments.iter()).enumerate() {
            let spec = &tenancy.tenants[tenant as usize];
            let msgs = WorkloadSpec {
                len: per_slot,
                peers: cfg.peers,
                tags: 1 << 12,
                comm: tenant as u16,
                seed: cfg.seed.wrapping_add(slot as u64),
                ..Default::default()
            }
            .generate()
            .msgs;
            let streams_n = spec.streams as f64;
            let rate = cfg.arrival_rate * (spec.share / total_share) / streams_n;
            let bucket = (spec.quota_rate > 0.0).then(|| {
                TokenBucket::new(
                    spec.quota_rate / streams_n,
                    (spec.burst / streams_n).max(1.0),
                )
            });
            streams.push(ServiceStream {
                msgs,
                rate,
                tenant,
                qos: Some(StreamQos {
                    class: spec.class,
                    bucket,
                }),
                pattern: spec.pattern,
            });
        }

        // Engine per shard: under `Auto`, chosen from the combined
        // traffic of the slots homed there (matrix when none are).
        let engine = MatchEngine::default();
        let choices: Vec<EngineChoice> = match cfg.policy {
            ShardEnginePolicy::Fixed(e) => vec![e.choice(); cfg.shards],
            ShardEnginePolicy::Auto(relax) => (0..cfg.shards)
                .map(|x| {
                    let msgs: Vec<Envelope> = streams
                        .iter()
                        .zip(assignments.iter())
                        .filter(|(_, &h)| h == x)
                        .flat_map(|(st, _)| st.msgs.iter().copied())
                        .collect();
                    if msgs.is_empty() {
                        return EngineChoice::Matrix;
                    }
                    let reqs: Vec<RecvRequest> = msgs
                        .iter()
                        .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
                        .collect();
                    engine.choose(relax, &msgs, &reqs)
                })
                .collect(),
        };
        let shards = choices
            .into_iter()
            .enumerate()
            .map(|(idx, choice)| {
                let mut gpu = Gpu::new(generation);
                if cfg.trace {
                    gpu.enable_tracing(obs::tracks::shard(idx), cfg.trace_capacity);
                }
                ServiceShard { gpu, choice }
            })
            .collect();

        let sched_rec = cfg.trace.then(|| {
            obs::sync::SharedSpanRecorder::new(obs::tracks::COORDINATOR, cfg.trace_capacity)
        });
        ShardedMatchService {
            cfg,
            placement,
            shards,
            streams,
            initial_assignments: assignments,
            tenancy: Some(tenancy),
            fault_tolerance: None,
            record_completions: false,
            sched_rec,
            wall_tracks: Vec::new(),
        }
    }

    /// Attach (or detach) the fault-tolerance stack. `None` — the
    /// default — runs the legacy fault-free fast path with no
    /// checkpoint or supervisor overhead.
    ///
    /// # Panics
    /// Panics if the plan names a shard the service doesn't have.
    pub fn set_fault_tolerance(&mut self, ft: Option<FaultTolerance>) {
        if let Some(ft) = &ft {
            assert!(
                ft.plan.events().iter().all(|e| e.shard < self.cfg.shards),
                "fault plan names a shard outside the service"
            );
        }
        self.fault_tolerance = ft;
    }

    /// The currently attached fault-tolerance stack.
    pub fn fault_tolerance(&self) -> Option<&FaultTolerance> {
        self.fault_tolerance.as_ref()
    }

    /// Record per-stream committed seqs during runs (differential-test
    /// support; costs one `Vec` push per delivery).
    pub fn set_record_completions(&mut self, on: bool) {
        self.record_completions = on;
    }

    /// Re-pin one shard's engine after construction (test/bench hook
    /// for heterogeneous shard fleets, e.g. to exercise the
    /// supervisor's engine fallback).
    pub fn repin_engine(&mut self, shard: usize, engine: ServiceEngine) {
        self.shards[shard].choice = engine.choice();
    }

    /// The engine pinned on each shard, in shard order.
    pub fn engine_choices(&self) -> Vec<EngineChoice> {
        self.shards.iter().map(|s| s.choice).collect()
    }

    /// The placement keying traffic to shards.
    pub fn placement(&self) -> &ShardPlacement {
        &self.placement
    }

    /// Replace the initial slot→shard assignments — e.g. to replay a
    /// resharded run's *final* placement as a static run for the
    /// byte-equality oracle. Engines are not re-planned; pair with
    /// [`ShardEnginePolicy::Fixed`] when placement feeds engine choice.
    ///
    /// # Panics
    /// Panics on a slot-count mismatch or an out-of-range shard index.
    pub fn set_assignments(&mut self, assignments: Vec<usize>) {
        assert_eq!(
            assignments.len(),
            self.initial_assignments.len(),
            "assignment list must cover every slot"
        );
        assert!(
            assignments.iter().all(|&s| s < self.cfg.shards),
            "assignment names a shard outside the service"
        );
        self.placement = ShardPlacement::with_assignments(self.cfg.shards, assignments.clone());
        self.initial_assignments = assignments;
    }

    /// Export the shards' flight recorders as Chrome `trace_event` JSON
    /// (loadable in Perfetto), one named track per shard.
    ///
    /// `None` unless the service was built with
    /// [`ShardedServiceConfig::trace`] set.
    pub fn trace_json(&self) -> Option<String> {
        let tracks: Vec<(String, &obs::SpanRecorder)> = self
            .shards
            .iter()
            .filter_map(|s| {
                s.gpu.obs.as_ref().map(|rec| {
                    let name = format!("shard {} ({})", rec.track(), engine_label(s.choice));
                    (name, rec)
                })
            })
            .collect();
        if tracks.is_empty() {
            None
        } else {
            Some(obs::perfetto::export(&tracks))
        }
    }

    /// Export the scheduler coordinator's epoch timeline as Chrome
    /// `trace_event` JSON — one span per synchronization epoch with the
    /// conflict-group and thread counts as args.
    ///
    /// Separate from [`trace_json`](Self::trace_json) on purpose: the
    /// shard timeline is a deterministic artefact compared byte-for-byte
    /// across schedulers, while epoch grouping legitimately depends on
    /// the scheduler. `None` unless [`ShardedServiceConfig::trace`] was
    /// set.
    pub fn scheduler_trace_json(&self) -> Option<String> {
        let rec = self.sched_rec.as_ref()?;
        let snap = rec.snapshot();
        let name = format!("scheduler ({:?})", self.cfg.scheduler);
        Some(obs::perfetto::export(&[(name, &snap)]))
    }

    /// Export the last run's wall-clock tracks (one `epoch_wall` span
    /// per shard per scheduler epoch, decomposed into the dual-clock
    /// buckets) as Chrome `trace_event` JSON.
    ///
    /// Wall time is nondeterministic, so this document is never merged
    /// into [`trace_json`](Self::trace_json) — combine them offline
    /// with [`obs::perfetto::merge`] when a side-by-side view is
    /// wanted. `None` unless [`ShardedServiceConfig::trace`] was set
    /// and a run has completed.
    pub fn wall_trace_json(&self) -> Option<String> {
        if self.wall_tracks.is_empty() {
            return None;
        }
        let tracks: Vec<(String, &obs::SpanRecorder)> = self
            .wall_tracks
            .iter()
            .map(|(name, rec)| (name.clone(), rec))
            .collect();
        Some(obs::perfetto::export(&tracks))
    }

    /// Turn on the race sanitizer on every shard device, so service
    /// runs surface cross-warp conflicts in the production kernels.
    pub fn enable_sanitizer(&mut self) {
        for s in self.shards.iter_mut() {
            s.gpu.enable_sanitizer();
        }
    }

    /// All sanitizer findings across shards as `(shard, finding)`
    /// pairs; empty when clean (or when the sanitizer is off).
    pub fn sanitizer_findings(&self) -> Vec<(usize, String)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                s.gpu
                    .sanitizer_findings
                    .iter()
                    .flatten()
                    .map(move |r| (i, r.to_string()))
            })
            .collect()
    }

    /// Simulate `cfg.duration` seconds of service (longer in
    /// [`drain`](ShardedServiceConfig::drain) mode).
    ///
    /// Execution is delegated to [`crate::sched`]: shards advance in
    /// per-shard virtual-time domains — merged on one thread under
    /// [`Scheduler::GlobalClock`], one OS thread per conflict group
    /// under [`Scheduler::ThreadPerShard`] — synchronized at supervisor
    /// barriers. Every simulated artefact is a pure function of the
    /// configuration, the placement and the attached
    /// [`FaultTolerance`], so repeated runs are bit-identical and both
    /// schedulers produce byte-identical metrics, completions and shard
    /// traces; only [`ShardedServiceReport::wall_seconds`] varies.
    pub fn run(&mut self) -> ShardedServiceReport {
        let ShardedMatchService {
            cfg,
            placement,
            shards,
            streams,
            initial_assignments,
            tenancy,
            fault_tolerance,
            record_completions,
            sched_rec,
            wall_tracks,
        } = self;
        let cfg = *cfg;
        let n = shards.len();

        // A clean slate per run keeps repeated runs bit-identical:
        // failover redirects and reshard migrations both roll back.
        placement.set_assignments(initial_assignments.clone());
        for s in 0..n {
            placement.restore(s);
        }
        for shard in shards.iter_mut() {
            if let Some(rec) = shard.gpu.obs.as_mut() {
                rec.reset();
            }
        }
        if let Some(rec) = sched_rec.as_ref() {
            rec.with(|r| r.reset());
        }

        let sampler = obs::FlowSampler::new(cfg.flow_sample_every, cfg.seed);
        let wallprof = if cfg.trace {
            obs::wallprof::WallProfiler::with_trace(n, cfg.trace_capacity)
        } else {
            obs::wallprof::WallProfiler::new(n)
        };

        let knobs = sched::RunKnobs {
            fill: tenancy.as_ref().map(|t| t.fill).unwrap_or_default(),
            reshard: tenancy.as_ref().and_then(|t| t.reshard),
            record_completions: *record_completions,
        };
        let wall_start = std::time::Instant::now();
        let out = sched::run_scheduled(
            &cfg,
            placement,
            shards,
            streams,
            fault_tolerance.as_ref(),
            knobs,
            sched::ObsHooks {
                sched_rec: sched_rec.as_ref(),
                flow_sampler: sampler,
                wallprof: Some(&wallprof),
            },
        );
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let sched::SchedOutcome {
            mut metrics,
            completions,
            busy,
            last_activity,
            last_spill,
            backlog,
            streams: stream_outcomes,
            migrations,
        } = out;
        *wall_tracks = wallprof.wall_tracks();

        // ---- Finalise per-shard metrics.
        for x in 0..n {
            let m = &mut metrics[x];
            m.busy_seconds = busy[x];
            m.utilisation = if last_activity[x] > 0.0 {
                (busy[x] / last_activity[x]).min(1.0)
            } else {
                0.0
            };
            m.saturated = (backlog[x] > 2 * cfg.max_batch as u64
                && backlog[x] as f64 > 0.05 * m.arrivals as f64)
                || last_spill[x] >= 0.9 * cfg.duration;
            m.ever_spilled = m.overflow.spilled > 0;
            m.trace_dropped = shards[x].gpu.obs.as_ref().map_or(0, |r| r.dropped());
        }

        let scheduler_profile = SchedulerProfile {
            scheduler: match cfg.scheduler {
                Scheduler::GlobalClock => "global_clock".to_string(),
                Scheduler::ThreadPerShard => "thread_per_shard".to_string(),
            },
            wall_seconds,
            shards: (0..n)
                .map(|x| {
                    let s = wallprof.snapshot(x);
                    ShardWallProfile {
                        shard: x,
                        epochs: s.epochs,
                        compute_ns: s.bucket_ns[0],
                        barrier_wait_ns: s.bucket_ns[1],
                        backpressure_ns: s.bucket_ns[2],
                        supervisor_sync_ns: s.bucket_ns[3],
                        total_ns: s.total_ns,
                    }
                })
                .collect(),
        };

        let elapsed = last_activity
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            .max(f64::MIN_POSITIVE);
        let total_matched: u64 = metrics.iter().map(|m| m.matched).sum();
        let mut overflow = OverflowStats::default();
        for m in &metrics {
            overflow.merge(&m.overflow);
        }
        let aggregate = ServiceReport {
            sustained_rate: total_matched as f64 / elapsed,
            offered_rate: cfg.arrival_rate,
            mean_depth: {
                let (sum, count) = metrics.iter().fold((0.0, 0u64), |(s, c), m| {
                    (s + m.queue_depth.sum, c + m.queue_depth.count)
                });
                sum / count.max(1) as f64
            },
            max_depth: metrics
                .iter()
                .map(|m| m.queue_depth.max as usize)
                .max()
                .unwrap_or(0),
            utilisation: metrics.iter().map(|m| m.utilisation).sum::<f64>() / n as f64,
            saturated: metrics.iter().any(|m| m.saturated),
            overflow,
            batches: metrics.iter().map(|m| m.batches).sum(),
        };
        let mut service_metrics =
            ServiceMetrics::from_shards(cfg.duration, cfg.arrival_rate, elapsed, metrics);
        let (done_migrations, aborted_migrations) = migrations;
        service_metrics.total_migrations = done_migrations;
        service_metrics.aborted_migrations = aborted_migrations;
        if let Some(tc) = tenancy.as_ref() {
            let mut tenants: Vec<crate::metrics::TenantMetrics> = tc
                .tenants
                .iter()
                .enumerate()
                .map(|(id, spec)| crate::metrics::TenantMetrics {
                    tenant: id as u32,
                    name: spec.name.clone(),
                    class: spec.class.label().to_string(),
                    streams: spec.streams as u64,
                    arrivals: 0,
                    admitted: 0,
                    matched: 0,
                    overflow: OverflowStats::default(),
                })
                .collect();
            for so in &stream_outcomes {
                let t = &mut tenants[so.tenant as usize];
                t.arrivals += so.arrivals;
                t.admitted += so.admitted;
                t.matched += so.matched;
                t.overflow.spilled += so.spilled;
                t.overflow.shed += so.shed;
            }
            service_metrics.tenants = tenants;
        }
        ShardedServiceReport {
            aggregate,
            metrics: service_metrics,
            completions,
            wall_seconds,
            scheduler_profile,
        }
    }
}

/// Build and run a sharded service in one call.
pub fn simulate_sharded_service(
    generation: GpuGeneration,
    cfg: ShardedServiceConfig,
) -> ShardedServiceReport {
    ShardedMatchService::new(generation, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind, FaultRates};

    fn cfg(rate: f64, engine: ServiceEngine) -> ServiceConfig {
        ServiceConfig {
            arrival_rate: rate,
            max_batch: 1024,
            batch_threshold: 256,
            queue_capacity: 1 << 14,
            duration: 0.004,
            engine,
            seed: 5,
        }
    }

    #[test]
    fn below_saturation_the_queue_stays_bounded() {
        // 1 M msgs/s against a ~4.7 M/s matrix matcher: comfortable.
        let r = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(1.0e6, ServiceEngine::Matrix),
        );
        assert!(!r.saturated, "{r:?}");
        assert!(r.utilisation < 0.75, "utilisation {}", r.utilisation);
        assert!((r.sustained_rate - 1.0e6).abs() / 1.0e6 < 0.15, "{r:?}");
        assert_eq!(r.overflow.total(), 0, "no overload, no overflow");
    }

    #[test]
    fn past_saturation_the_backlog_grows() {
        // 20 M msgs/s against the compliant matcher: hopeless.
        let r = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(20.0e6, ServiceEngine::Matrix),
        );
        assert!(r.saturated, "{r:?}");
        assert!(r.utilisation > 0.95, "the kernel must be pegged: {r:?}");
        // The sustained rate caps at the matcher's ceiling.
        assert!(r.sustained_rate < 8.0e6, "{r:?}");
        // With a bounded queue the overload spills instead of growing
        // the backlog without bound.
        assert!(r.overflow.spilled > 0, "{r:?}");
        assert!(r.max_depth <= 1 << 14, "{r:?}");
    }

    #[test]
    fn relaxed_engines_raise_the_ceiling() {
        // The same 20 M msgs/s the matrix matcher drowned under is easy
        // for the hash engine.
        let r = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(20.0e6, ServiceEngine::Hash),
        );
        assert!(!r.saturated, "{r:?}");
        // And partitioning lands in between.
        let p = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(20.0e6, ServiceEngine::Partitioned(16)),
        );
        assert!(!p.saturated, "{p:?}");
    }

    #[test]
    fn utilisation_tracks_offered_load() {
        let lo = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(0.5e6, ServiceEngine::Matrix),
        );
        let hi = simulate_service(
            GpuGeneration::PascalGtx1080,
            cfg(3.0e6, ServiceEngine::Matrix),
        );
        assert!(
            hi.utilisation > lo.utilisation * 2.0,
            "lo {} hi {}",
            lo.utilisation,
            hi.utilisation
        );
    }

    fn sharded_cfg(shards: usize, rate: f64) -> ShardedServiceConfig {
        ShardedServiceConfig {
            shards,
            arrival_rate: rate,
            duration: 0.002,
            ..Default::default()
        }
    }

    #[test]
    fn sharding_raises_the_matrix_ceiling() {
        // 10 M msgs/s drowns one matrix kernel; four shards split the
        // stream into sustainable quarters.
        let one = simulate_sharded_service(GpuGeneration::PascalGtx1080, sharded_cfg(1, 10.0e6));
        let four = simulate_sharded_service(GpuGeneration::PascalGtx1080, sharded_cfg(4, 10.0e6));
        assert!(one.aggregate.saturated, "{:?}", one.aggregate);
        assert!(!four.aggregate.saturated, "{:?}", four.aggregate);
        assert!(
            four.aggregate.sustained_rate > one.aggregate.sustained_rate,
            "4 shards {} vs 1 shard {}",
            four.aggregate.sustained_rate,
            one.aggregate.sustained_rate
        );
    }

    #[test]
    fn admission_control_spills_rather_than_growing_without_bound() {
        let r = simulate_sharded_service(
            GpuGeneration::PascalGtx1080,
            ShardedServiceConfig {
                queue_capacity: 2048,
                ..sharded_cfg(1, 30.0e6)
            },
        );
        let shard = &r.metrics.shards[0];
        assert!(shard.overflow.spilled > 0, "overload must spill: {shard:?}");
        assert!(shard.ever_spilled);
        assert!(shard.saturated);
        assert!(
            shard.queue_depth.max as usize <= 2048,
            "bounded queue exceeded: {}",
            shard.queue_depth.max
        );
        assert_eq!(
            shard.admitted + shard.overflow.spilled,
            shard.arrivals,
            "admission accounting must balance"
        );
        assert_eq!(shard.overflow.shed, 0, "no supervisor, nothing shed");
    }

    #[test]
    fn auto_policy_pins_relaxed_engines_per_shard() {
        let svc = ShardedMatchService::new(
            GpuGeneration::PascalGtx1080,
            ShardedServiceConfig {
                policy: ShardEnginePolicy::Auto(RelaxationConfig::UNORDERED),
                comms: 2,
                ..sharded_cfg(4, 4.0e6)
            },
        );
        let choices = svc.engine_choices();
        assert_eq!(choices.len(), 4);
        assert!(
            choices.iter().all(|c| *c != EngineChoice::Matrix),
            "unordered traffic should pin relaxed engines: {choices:?}"
        );
    }

    #[test]
    fn tracing_is_deterministic_and_off_by_default() {
        let base = sharded_cfg(2, 2.0e6);
        let mut untraced = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        untraced.run();
        assert!(
            untraced.trace_json().is_none(),
            "no recorders exist unless tracing was requested"
        );

        let traced_cfg = ShardedServiceConfig {
            trace: true,
            ..base
        };
        let mut a = ShardedMatchService::new(GpuGeneration::PascalGtx1080, traced_cfg);
        let ra = a.run();
        let ja = a.trace_json().expect("tracing was enabled");
        let mut b = ShardedMatchService::new(GpuGeneration::PascalGtx1080, traced_cfg);
        b.run();
        assert_eq!(ja, b.trace_json().unwrap(), "same seed, same bytes");
        a.run();
        assert_eq!(
            ja,
            a.trace_json().unwrap(),
            "recorders reset per run, so repeated runs export identically"
        );
        for cat in ["batch_admission", "match", "kernel_launch", "timing_replay"] {
            assert!(ja.contains(&format!("\"cat\":\"{cat}\"")), "missing {cat}");
        }
        for s in &ra.metrics.shards {
            assert!(s.profile.launches > 0, "{s:?}");
            assert_eq!(
                s.profile.stall_total(),
                s.profile.cycles,
                "stall rollup must partition the shard's cycles"
            );
        }
    }

    #[test]
    fn spills_appear_in_the_trace() {
        let r = ShardedServiceConfig {
            queue_capacity: 2048,
            trace: true,
            ..sharded_cfg(1, 30.0e6)
        };
        let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, r);
        let report = svc.run();
        assert!(report.metrics.shards[0].overflow.spilled > 0);
        let json = svc.trace_json().unwrap();
        assert!(json.contains("\"cat\":\"spill\""));
    }

    #[test]
    fn shard_metrics_balance_their_counters() {
        let r = simulate_sharded_service(
            GpuGeneration::PascalGtx1080,
            ShardedServiceConfig {
                comms: 3,
                ..sharded_cfg(3, 3.0e6)
            },
        );
        for s in &r.metrics.shards {
            assert!(s.matched <= s.admitted, "{s:?}");
            assert_eq!(s.batches, s.batch_size.count, "{s:?}");
            assert_eq!(s.batches, s.service_time.count, "{s:?}");
            assert_eq!(s.matched, s.match_latency.count, "{s:?}");
        }
        let matched: u64 = r.metrics.shards.iter().map(|s| s.matched).sum();
        assert_eq!(matched, r.metrics.total_matched);
    }

    // ---- Fault tolerance ----

    fn ft_cfg(shards: usize, rate: f64) -> ShardedServiceConfig {
        ShardedServiceConfig {
            queue_capacity: 1 << 20,
            drain: true,
            ..sharded_cfg(shards, rate)
        }
    }

    fn crash_at(shard: usize, at: f64) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            at,
            shard,
            kind: FaultKind::Crash,
        }])
    }

    #[test]
    fn crashes_recover_and_preserve_exactly_once() {
        let base = ft_cfg(2, 4.0e6);
        // Fault-free baseline: what a perfect run commits.
        let mut clean = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        clean.set_record_completions(true);
        let want = clean.run().completions.unwrap();

        // Same service, shard 0 crashes mid-run.
        let mut faulty = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        faulty.set_record_completions(true);
        faulty.set_fault_tolerance(Some(FaultTolerance {
            plan: crash_at(0, 0.6e-3),
            recovery: RecoveryConfig::default(),
            supervisor: None,
        }));
        let r = faulty.run();
        let got = r.completions.unwrap();

        assert_eq!(got, want, "post-recovery matches must equal fault-free");
        let s0 = &r.metrics.shards[0];
        assert_eq!(s0.crashes, 1);
        assert_eq!(s0.recoveries, 1);
        assert!(s0.journal_replayed > 0, "{s0:?}");
        assert!(
            s0.replay_duplicates > 0,
            "committed-but-journaled entries must be re-matched and suppressed: {s0:?}"
        );
        assert_eq!(s0.recovery_seconds.count, 1);
        assert!(
            s0.recovery_seconds.min >= RecoveryConfig::default().restart_latency,
            "recovery cannot beat the restart latency: {}",
            s0.recovery_seconds.min
        );
        assert_eq!(r.metrics.total_crashes, 1);
        assert_eq!(r.metrics.total_recoveries, 1);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let build = || {
            let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, ft_cfg(3, 5.0e6));
            svc.set_record_completions(true);
            svc.set_fault_tolerance(Some(FaultTolerance {
                plan: FaultPlan::random(
                    13,
                    3,
                    0.002,
                    &FaultRates {
                        crash_rate: 1000.0,
                        hang_rate: 500.0,
                        ..Default::default()
                    },
                ),
                recovery: RecoveryConfig::default(),
                supervisor: Some(SupervisorConfig::default()),
            }));
            svc
        };
        let a = build().run();
        let b = build().run();
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.metrics, b.metrics, "same plan, same metrics, bit for bit");
    }

    #[test]
    fn supervisor_fails_over_and_hands_back() {
        let base = ShardedServiceConfig {
            trace: true,
            ..ft_cfg(2, 4.0e6)
        };
        let mut clean = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        clean.set_record_completions(true);
        clean.repin_engine(0, ServiceEngine::Matrix);
        clean.repin_engine(1, ServiceEngine::Hash);
        let want = clean.run().completions.unwrap();

        let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        svc.set_record_completions(true);
        // Shard 0 promises full ordering; its failover target is the
        // relaxed hash shard, forcing an engine fallback.
        svc.repin_engine(0, ServiceEngine::Matrix);
        svc.repin_engine(1, ServiceEngine::Hash);
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: FaultPlan::new(vec![FaultEvent {
                at: 0.3e-3,
                shard: 0,
                kind: FaultKind::Hang { seconds: 500e-6 },
            }]),
            recovery: RecoveryConfig::default(),
            supervisor: Some(SupervisorConfig::default()),
        }));
        let r = svc.run();

        let (s0, s1) = (&r.metrics.shards[0], &r.metrics.shards[1]);
        assert_eq!(s0.hangs, 1);
        assert_eq!(s0.failovers_out, 1, "{s0:?}");
        assert_eq!(s1.failovers_in, 1, "{s1:?}");
        assert!(s1.transferred_in > 0, "{s1:?}");
        assert_eq!(
            s1.engine_fallbacks, 1,
            "hash target must adopt the matrix stream's discipline: {s1:?}"
        );
        assert_eq!(r.metrics.total_failovers, 1);
        assert_eq!(
            svc.placement().target_of(0),
            0,
            "the stream must be handed back once shard 0 is up"
        );
        assert_eq!(
            r.completions.unwrap(),
            want,
            "failover must not duplicate or lose a single match"
        );
        let json = svc.trace_json().unwrap();
        assert!(json.contains("\"cat\":\"failover\""));
        assert!(json.contains("\"name\":\"handback\""));
    }

    #[test]
    fn hung_shard_returning_late_is_fenced_under_both_schedulers() {
        // Hang-then-return: shard 0 hangs mid-batch for longer than the
        // failover grace period, so its streams move to shard 1 under a
        // bumped epoch while the stuck batch is still on its device.
        // When the hang ends the batch commits late — every entry now
        // carries a stale epoch and must be rejected at the commit
        // point, not double-committed against the stand-in. The offered
        // rate outruns the two shards so they are continuously busy and
        // the hang is guaranteed to catch a batch on the device.
        let base = ft_cfg(2, 16.0e6);
        let mut clean = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        clean.set_record_completions(true);
        let want = clean.run().completions.unwrap();

        let fence_run = |scheduler: Scheduler| {
            let mut svc = ShardedMatchService::new(
                GpuGeneration::PascalGtx1080,
                ShardedServiceConfig { scheduler, ..base },
            );
            svc.set_record_completions(true);
            svc.set_fault_tolerance(Some(FaultTolerance {
                plan: FaultPlan::new(vec![FaultEvent {
                    at: 0.3e-3,
                    shard: 0,
                    kind: FaultKind::Hang { seconds: 600e-6 },
                }]),
                recovery: RecoveryConfig::default(),
                supervisor: Some(SupervisorConfig::default()),
            }));
            svc.run()
        };
        let a = fence_run(Scheduler::GlobalClock);
        let s0 = &a.metrics.shards[0];
        assert_eq!(s0.failovers_out, 1, "{s0:?}");
        assert!(
            s0.fenced_commits > 0,
            "the returning shard's stale batch must be fenced: {s0:?}"
        );
        assert_eq!(
            a.completions.as_ref().unwrap(),
            &want,
            "fencing must neither lose nor duplicate a match"
        );
        let b = fence_run(Scheduler::ThreadPerShard);
        assert_eq!(a.completions, b.completions);
        assert_eq!(
            a.metrics, b.metrics,
            "fenced runs must be byte-identical across schedulers"
        );
    }

    #[test]
    fn partitioned_shard_fails_over_and_heals_without_loss() {
        let base = ShardedServiceConfig {
            trace: true,
            ..ft_cfg(2, 4.0e6)
        };
        let mut clean = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        clean.set_record_completions(true);
        let want = clean.run().completions.unwrap();

        let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        svc.set_record_completions(true);
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: FaultPlan::new(vec![FaultEvent {
                at: 0.3e-3,
                shard: 0,
                kind: FaultKind::Partition { seconds: 600e-6 },
            }]),
            recovery: RecoveryConfig::default(),
            supervisor: Some(SupervisorConfig::default()),
        }));
        let r = svc.run();

        let (s0, s1) = (&r.metrics.shards[0], &r.metrics.shards[1]);
        assert_eq!(s0.partitions, 1, "{s0:?}");
        assert_eq!(s0.crashes, 0, "a partition is not a crash: {s0:?}");
        assert_eq!(s0.hangs, 0);
        assert_eq!(
            s0.failovers_out, 1,
            "a sustained partition fails the shard's streams over: {s0:?}"
        );
        assert_eq!(s1.failovers_in, 1, "{s1:?}");
        assert!(s1.transferred_in > 0, "{s1:?}");
        assert_eq!(
            svc.placement().target_of(0),
            0,
            "the stream must be handed back once the partition heals"
        );
        assert_eq!(
            r.completions.unwrap(),
            want,
            "a partition plus failover must not lose or duplicate a match"
        );
        let json = svc.trace_json().unwrap();
        assert!(json.contains("\"cat\":\"partition\""));
        assert!(json.contains("\"name\":\"handback\""));
    }

    #[test]
    fn corrupt_checkpoints_fall_back_a_generation_at_restore() {
        let base = ShardedServiceConfig {
            trace: true,
            ..ft_cfg(2, 4.0e6)
        };
        let mut clean = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        clean.set_record_completions(true);
        let want = clean.run().completions.unwrap();

        // Corrupt shard 0's newest snapshots, then crash it: restore
        // must skip the corrupt generation, start from an older valid
        // snapshot and replay the longer journal window it kept.
        let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        svc.set_record_completions(true);
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: FaultPlan::new(vec![
                FaultEvent {
                    at: 0.55e-3,
                    shard: 0,
                    kind: FaultKind::CorruptCheckpoint,
                },
                FaultEvent {
                    at: 0.6e-3,
                    shard: 0,
                    kind: FaultKind::Crash,
                },
            ]),
            recovery: RecoveryConfig::default(),
            supervisor: None,
        }));
        let r = svc.run();

        let s0 = &r.metrics.shards[0];
        assert!(s0.corrupt_checkpoints > 0, "{s0:?}");
        assert_eq!(s0.crashes, 1);
        assert_eq!(s0.recoveries, 1);
        assert!(
            s0.snapshot_fallbacks > 0,
            "restore must skip the corrupted generation: {s0:?}"
        );
        assert_eq!(
            r.completions.unwrap(),
            want,
            "fallback restore still converges on the fault-free matches"
        );
        let json = svc.trace_json().unwrap();
        assert!(json.contains("\"name\":\"checkpoint_corruption\""));
    }

    #[test]
    fn overloaded_shards_shed_past_the_deadline() {
        let mut svc = ShardedMatchService::new(
            GpuGeneration::PascalGtx1080,
            ShardedServiceConfig {
                queue_capacity: 2048,
                trace: true,
                ..sharded_cfg(1, 30.0e6)
            },
        );
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: FaultPlan::none(),
            recovery: RecoveryConfig::default(),
            supervisor: Some(SupervisorConfig {
                shed_deadline: 150e-6,
                overload_checks: 2,
                ..Default::default()
            }),
        }));
        let r = svc.run();
        let s = &r.metrics.shards[0];
        assert!(s.overflow.shed > 0, "sustained overload must shed: {s:?}");
        assert!(
            s.overflow.spilled > 0,
            "shedding does not replace admission spill: {s:?}"
        );
        assert_eq!(r.metrics.total_shed, s.overflow.shed);
        let json = svc.trace_json().unwrap();
        assert!(json.contains("\"cat\":\"shed\""));
    }

    #[test]
    fn checkpoints_cost_little_when_nothing_crashes() {
        let base = ft_cfg(2, 4.0e6);
        let mut plain = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        let r_plain = plain.run();
        let mut ckpt = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        ckpt.set_fault_tolerance(Some(FaultTolerance::default()));
        let r_ckpt = ckpt.run();
        assert!(
            r_ckpt.metrics.shards.iter().all(|s| s.checkpoints > 0),
            "every live shard must checkpoint"
        );
        assert_eq!(
            r_ckpt.metrics.total_matched, r_plain.metrics.total_matched,
            "a crash-free drain matches exactly the same set"
        );
        let (a, b) = (
            r_plain.aggregate.sustained_rate,
            r_ckpt.aggregate.sustained_rate,
        );
        assert!(
            (a - b).abs() / a < 0.05,
            "checkpointing should cost a few percent at most: {a} vs {b}"
        );
    }

    #[test]
    fn slow_shards_lose_throughput_but_nothing_else() {
        let base = sharded_cfg(1, 4.0e6);
        let clean = simulate_sharded_service(GpuGeneration::PascalGtx1080, base);
        let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, base);
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: FaultPlan::new(vec![FaultEvent {
                at: 0.2e-3,
                shard: 0,
                kind: FaultKind::Slow {
                    factor: 4.0,
                    seconds: 1.0e-3,
                },
            }]),
            recovery: RecoveryConfig::default(),
            supervisor: None,
        }));
        let slow = svc.run();
        assert!(
            slow.metrics.total_matched < clean.metrics.total_matched,
            "a 4x slow window must cost throughput: {} vs {}",
            slow.metrics.total_matched,
            clean.metrics.total_matched
        );
        assert_eq!(slow.metrics.total_crashes, 0);
        assert_eq!(slow.metrics.shards[0].overflow.shed, 0);
    }

    #[test]
    fn fault_spans_land_in_the_trace() {
        let mut svc = ShardedMatchService::new(
            GpuGeneration::PascalGtx1080,
            ShardedServiceConfig {
                trace: true,
                ..ft_cfg(2, 4.0e6)
            },
        );
        svc.set_fault_tolerance(Some(FaultTolerance {
            plan: crash_at(1, 0.5e-3),
            recovery: RecoveryConfig::default(),
            supervisor: None,
        }));
        svc.run();
        let json = svc.trace_json().unwrap();
        for cat in ["crash", "recovery", "checkpoint"] {
            assert!(
                json.contains(&format!("\"cat\":\"{cat}\"")),
                "missing {cat}"
            );
        }
    }
}
