//! Execution scheduling for the sharded service: per-shard virtual-time
//! domains advanced either on one OS thread or on one thread per
//! conflict group, synchronized PDES-style at supervisor barriers.
//!
//! The legacy service advanced every shard on one global simulated
//! clock. This module splits that clock into per-shard *domains*
//! ([`fabric::vtime`]): each domain owns the complete state a group of
//! shards needs (device, queue, stream watermarks, fault schedule) and
//! advances through its own local events. Domains only interact at
//! *barriers* — supervisor health-check times, where failover rewires
//! placement — so between barriers they can run on separate OS threads.
//! The conservative horizon for each epoch comes from a
//! [`fabric::WatermarkExchange`]: no domain may run past the slowest
//! domain's clock plus the supervisor's lookahead.
//!
//! Determinism is the contract: both schedulers produce byte-identical
//! artefacts because every side effect is keyed to *local* events
//! (activations), never to whichever boundary times a particular
//! domain partition happens to visit:
//!
//! * a shard sheds, samples queue depth and dispatches only when it was
//!   *activated* at the current instant — by its own commit, fault,
//!   wake, checkpoint edge or a barrier tick — so a merged domain's
//!   extra foreign-time boundaries change nothing;
//! * admission interleaves arrivals across streams in (arrival-time,
//!   stream) order, so a redirect target's queue content is a pure
//!   function of the arrival set, not of boundary granularity;
//! * spill instants coalesce per run and are stamped with the arrival
//!   time of the last spill, not the boundary time that observed it.
//!
//! `tests/parallel_differential.rs` pins the equivalence per engine,
//! per seed, including under fault injection.

use std::collections::VecDeque;

use msg_match::prelude::*;
use simt_sim::Gpu;

use crate::fault::{FaultEvent, FaultKind};
use crate::metrics::ShardMetrics;
use crate::recovery::{RecoveryConfig, StreamState};
use crate::service::{
    engine_label, strictness, FaultTolerance, ServiceShard, ServiceStream, ShardedServiceConfig,
};
use crate::supervisor::Supervisor;
use crate::tenancy::{
    AdmitVerdict, ArrivalPattern, FillLimits, PlannedMigration, ReshardPlanner, ReshardPolicy,
    StreamQos,
};

/// How the sharded service executes its shard domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// All shards in one merged virtual-time domain on the calling
    /// thread — the legacy single-threaded execution order.
    #[default]
    GlobalClock,
    /// One OS thread per conflict group of shards (scoped threads over
    /// the `crossbeam` shim), synchronized at supervisor barriers.
    /// Produces byte-identical artefacts to [`Scheduler::GlobalClock`].
    ThreadPerShard,
}

/// One queued arrival: which stream it belongs to (streams are keyed by
/// home shard), its per-stream sequence number, and when it arrived.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QEntry {
    pub(crate) stream: usize,
    pub(crate) seq: u64,
    pub(crate) arrived: f64,
    /// The stream's placement epoch when the entry was (re-)enqueued.
    /// Failover bumps the epoch as it transfers a stream, so a copy
    /// still in flight on the old owner commits under a stale epoch and
    /// is fenced off at the commit point.
    pub(crate) epoch: u64,
}

/// A dispatched batch occupying a shard's device until `until`.
pub(crate) struct InFlight {
    until: f64,
    entries: Vec<QEntry>,
    report: GpuMatchReport,
    service: f64,
}

/// What a shard's device is doing right now.
pub(crate) enum Phase {
    /// Ready to dispatch.
    Idle,
    /// Matching a batch; commits at `InFlight::until`.
    Busy(Box<InFlight>),
    /// Unresponsive but state intact; resumes any interrupted batch.
    Hung {
        until: f64,
        resume: Option<Box<InFlight>>,
    },
    /// Crashed; booting a fresh device.
    Restarting { until: f64, crashed_at: f64 },
    /// Restoring the snapshot and replaying the journal.
    Replaying { until: f64, crashed_at: f64 },
    /// Taking a periodic snapshot (pauses matching for its cost).
    Checkpointing { until: f64, started: f64 },
}

impl Phase {
    fn next_event(&self) -> Option<f64> {
        match self {
            Phase::Idle => None,
            Phase::Busy(f) => Some(f.until),
            Phase::Hung { until, .. }
            | Phase::Restarting { until, .. }
            | Phase::Replaying { until, .. }
            | Phase::Checkpointing { until, .. } => Some(*until),
        }
    }

    /// Entries occupying the device (they count against queue capacity).
    pub(crate) fn inflight_len(&self) -> usize {
        match self {
            Phase::Busy(f) => f.entries.len(),
            Phase::Hung {
                resume: Some(f), ..
            } => f.entries.len(),
            _ => 0,
        }
    }

    /// Is any in-flight entry from stream `s`? (Failover handback must
    /// wait until the target has fully drained the inherited stream.)
    fn holds_stream(&self, s: usize) -> bool {
        match self {
            Phase::Busy(f) => f.entries.iter().any(|e| e.stream == s),
            Phase::Hung {
                resume: Some(f), ..
            } => f.entries.iter().any(|e| e.stream == s),
            _ => false,
        }
    }

    /// Would a health check get an answer?
    fn responsive(&self) -> bool {
        !matches!(
            self,
            Phase::Hung { .. } | Phase::Restarting { .. } | Phase::Replaying { .. }
        )
    }

    /// Is the shard dark (device state unavailable)? Arrivals admitted
    /// while dark are journaled but not queued; the recovery rebuild
    /// restores them.
    fn dark(&self) -> bool {
        matches!(self, Phase::Restarting { .. } | Phase::Replaying { .. })
    }
}

/// Everything one shard's execution owns: the device, the pending
/// queue, the fault schedule and the counters. Moved wholesale between
/// the coordinator and whichever domain runs the shard this epoch.
pub(crate) struct ShardCell<'a> {
    idx: usize,
    gpu: &'a mut Gpu,
    queue: VecDeque<QEntry>,
    phase: Phase,
    metrics: ShardMetrics,
    busy: f64,
    last_activity: f64,
    last_spill: f64,
    slow_until: f64,
    slow_factor: f64,
    /// Until when the shard is partitioned off (unreachable from the
    /// supervisor and its peers, state intact, still servicing what it
    /// holds). `NEG_INFINITY` when never partitioned.
    partitioned_until: f64,
    next_ckpt: f64,
    active_choice: EngineChoice,
    home_choice: EngineChoice,
    faults: Vec<FaultEvent>,
    fault_idx: usize,
    /// Coalesced spill run: count and arrival time of the last spill,
    /// flushed as one obs instant on the next admit, dispatch or at the
    /// end of the run.
    pend_spill: u64,
    pend_spill_t: f64,
    /// Coalesced admission-shed run (QoS rejections), same flushing
    /// discipline as spills.
    pend_shed: u64,
    pend_shed_t: f64,
    /// Armed local wake (dispatch re-evaluation) time.
    wake: Option<f64>,
    /// True when the shard had a local event at the current instant and
    /// must re-evaluate checkpoint/shed/dispatch.
    active: bool,
}

/// Per-stream state: the arrival generator cursor, the recovery
/// watermarks, the optional committed-seq journal, and the tenant QoS
/// gate. Streams are *slots* in the placement — their home shard is
/// `placement.home_of_slot(idx)`, not `idx` itself.
pub(crate) struct StreamCell<'a> {
    idx: usize,
    msgs: &'a [Envelope],
    rate: f64,
    state: StreamState,
    seen: u64,
    /// Placement epoch, bumped each time failover transfers the stream
    /// to a new owner; commits stamped with an older epoch are fenced.
    epoch: u64,
    completions: Option<Vec<u64>>,
    /// Arrival-time shape (uniform for legacy streams).
    pattern: ArrivalPattern,
    /// Owning tenant (0 for the implicit single tenant).
    tenant: u32,
    /// Per-stream QoS gate; `None` admits on raw capacity (legacy).
    qos: Option<StreamQos>,
    /// Per-stream overflow split, aggregated per tenant at the end.
    spilled_n: u64,
    shed_n: u64,
    matched_n: u64,
}

/// Epoch-constant context shared (immutably) by every domain.
struct EpochEnv<'a> {
    cfg: ShardedServiceConfig,
    capacity: usize,
    threshold: usize,
    recovery: Option<RecoveryConfig>,
    placement: &'a ShardPlacement,
    shedding: &'a [bool],
    shed_deadline: f64,
    /// Queue-fill ceilings for non-guaranteed QoS classes.
    fill: FillLimits,
    /// Deterministic 1-in-K admission into the causal flow trace. A
    /// pure function of `(seed, flow id)`, so the sampled set — and
    /// therefore the recorded event stream — is scheduler-invariant.
    sampler: obs::FlowSampler,
}

/// A virtual-time domain: one conflict group's shards and streams plus
/// its own simulated clock.
struct Domain<'a> {
    now: f64,
    shards: Vec<ShardCell<'a>>,
    streams: Vec<StreamCell<'a>>,
}

fn xpos(cells: &[ShardCell], idx: usize) -> usize {
    cells
        .binary_search_by_key(&idx, |c| c.idx)
        .expect("target shard is in this domain")
}

fn spos(cells: &[StreamCell], idx: usize) -> usize {
    cells
        .binary_search_by_key(&idx, |c| c.idx)
        .expect("stream is in this domain")
}

fn flush_spills(cell: &mut ShardCell) {
    if cell.pend_spill > 0 {
        if let Some(rec) = cell.gpu.obs.as_mut() {
            rec.set_now_ns((cell.pend_spill_t * 1e9).round() as u64);
            rec.record_instant(
                obs::SpanCategory::Spill,
                "spill",
                vec![("count", obs::ArgValue::U64(cell.pend_spill))],
            );
        }
        cell.pend_spill = 0;
    }
    if cell.pend_shed > 0 {
        if let Some(rec) = cell.gpu.obs.as_mut() {
            rec.set_now_ns((cell.pend_shed_t * 1e9).round() as u64);
            rec.record_instant(
                obs::SpanCategory::Shed,
                "admission_shed",
                vec![("count", obs::ArgValue::U64(cell.pend_shed))],
            );
        }
        cell.pend_shed = 0;
    }
}

/// The stall class that dominated a batch's critical path (the flow
/// trace annotates each sampled match with it).
fn dominant_stall(report: &GpuMatchReport) -> &'static str {
    const LABELS: [&str; 5] = [
        "issue",
        "mem_dependency",
        "barrier",
        "occupancy_wait",
        "pipe_contention",
    ];
    let mut best = 0;
    for (i, &c) in report.stall_cycles.iter().enumerate() {
        if c > report.stall_cycles[best] {
            best = i;
        }
    }
    LABELS[best]
}

/// Deliver a completed batch: advance each stream's commit watermark,
/// suppressing entries a concurrent path (failover transfer, journal
/// replay) already delivered — the idempotent-commit half of
/// exactly-once matching.
fn commit_batch(
    inf: InFlight,
    cell: &mut ShardCell,
    streams: &mut [StreamCell],
    sampler: obs::FlowSampler,
) {
    cell.busy += inf.service;
    cell.metrics.profile.absorb(&inf.report);
    cell.metrics.batches += 1;
    cell.metrics.batch_size.record(inf.entries.len() as f64);
    cell.metrics.service_time.record(inf.service);
    let stall = dominant_stall(&inf.report);
    let until_ns = (inf.until * 1e9).round() as u64;
    for e in &inf.entries {
        let sp = spos(streams, e.stream);
        let sc = &mut streams[sp];
        if e.epoch < sc.epoch {
            // The entry was dispatched before a failover transferred
            // the stream away: the new owner holds its own copy (from
            // the journal window), so this late commit must not touch
            // the watermark — the fence that keeps a partitioned shard
            // healing back from double-committing stale work.
            cell.metrics.fenced_commits += 1;
            continue;
        }
        if e.seq < sc.state.committed {
            cell.metrics.replay_duplicates += 1;
            continue;
        }
        debug_assert_eq!(
            e.seq,
            sc.state.committed,
            "per-stream commits are FIFO: shard {} stream {} seq {} committed {} epoch {} sc.epoch {} until {}",
            cell.idx,
            e.stream,
            e.seq,
            sc.state.committed,
            e.epoch,
            sc.epoch,
            inf.until,
        );
        sc.state.committed = e.seq + 1;
        sc.matched_n += 1;
        cell.metrics.matched += 1;
        cell.metrics.match_latency.record(inf.until - e.arrived);
        if let Some(c) = sc.completions.as_mut() {
            c.push(e.seq);
        }
        let fid = obs::FlowId::service(e.stream as u32, e.seq);
        if sampler.admits(fid) {
            if let Some(rec) = cell.gpu.obs.as_mut() {
                rec.record_flow(
                    "matched",
                    fid,
                    obs::FlowPhase::Step,
                    until_ns,
                    vec![("stall", obs::ArgValue::Text(stall.to_string()))],
                );
                rec.record_flow("delivered", fid, obs::FlowPhase::End, until_ns, vec![]);
            }
        }
    }
    cell.last_activity = cell.last_activity.max(inf.until);
}

/// When will `need` more arrivals have been generated for the streams
/// currently routed to shard `x`? Returns the wake time (half an
/// arrival past the filling arrival, to dodge float truncation), or
/// `None` when no stream feeds the shard.
fn fill_wake(
    streams: &[StreamCell],
    placement: &ShardPlacement,
    x: usize,
    need: usize,
) -> Option<f64> {
    let mut cursors: Vec<(ArrivalPattern, f64, u64)> = streams
        .iter()
        .filter(|sc| placement.target_of(sc.idx) == x && sc.rate > 0.0)
        .map(|sc| (sc.pattern, sc.rate, sc.seen))
        .collect();
    if cursors.is_empty() {
        return None;
    }
    let mut wake = 0.0f64;
    for _ in 0..need.max(1) {
        let (pat, rate, v) = cursors
            .iter_mut()
            .min_by(|a, b| {
                let ta = a.0.arrival_time(a.2 + 1, a.1);
                let tb = b.0.arrival_time(b.2 + 1, b.1);
                ta.partial_cmp(&tb).expect("arrival times are finite")
            })
            .expect("cursors is non-empty");
        *v += 1;
        wake = pat.wake_after(*v, *rate);
    }
    Some(wake)
}

impl<'a> Domain<'a> {
    /// Process everything due at `self.now`: admission up to the
    /// horizon, fault injections, then phase transitions — the same
    /// intra-instant order the legacy loop used. Cells whose own state
    /// changed (or whose armed wake / checkpoint edge is exactly now)
    /// are marked active for the following [`post`](Self::post).
    fn boundary(&mut self, env: &EpochEnv) {
        let Domain {
            now,
            shards,
            streams,
        } = self;
        let now = *now;

        // ---- Admission, interleaved across streams in (arrival time,
        // stream) order so queue contents are boundary-invariant.
        let horizon = now.min(env.cfg.duration);
        loop {
            let mut best: Option<(f64, usize)> = None;
            for (sp, sc) in streams.iter().enumerate() {
                if sc.rate <= 0.0 || sc.msgs.is_empty() {
                    continue;
                }
                let due = sc.pattern.due(sc.rate, horizon);
                if sc.seen >= due {
                    continue;
                }
                let t = sc.pattern.arrival_time(sc.seen + 1, sc.rate);
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, sp));
                }
            }
            let Some((t, sp)) = best else { break };
            let s = streams[sp].idx;
            let x = env.placement.target_of(s);
            let xp = xpos(shards, x);
            let cell = &mut shards[xp];
            cell.metrics.arrivals += 1;
            let backlog = cell.queue.len() + cell.phase.inflight_len();
            // QoS verdict: unmetered legacy streams admit on raw
            // capacity; tenant streams consult their token bucket and
            // class fill ceiling. The verdict is a pure function of
            // (arrival time, backlog), both boundary-invariant, so it
            // is identical under either scheduler.
            let verdict = match streams[sp].qos.as_mut() {
                None => {
                    if backlog < env.capacity {
                        AdmitVerdict::Admit
                    } else {
                        AdmitVerdict::Spill
                    }
                }
                Some(q) => q.admit(t, backlog, env.capacity, env.fill),
            };
            match verdict {
                AdmitVerdict::Admit => {
                    // An admit ends any spill/shed run.
                    flush_spills(cell);
                    let seq = streams[sp].state.admit(t);
                    let epoch = streams[sp].epoch;
                    // A dark shard's queue died with its device;
                    // journal-only until the rebuild restores it.
                    if !cell.phase.dark() {
                        cell.queue.push_back(QEntry {
                            stream: s,
                            seq,
                            arrived: t,
                            epoch,
                        });
                    }
                    cell.metrics.admitted += 1;
                    let fid = obs::FlowId::service(s as u32, seq);
                    if env.sampler.admits(fid) {
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.record_flow(
                                "admitted",
                                fid,
                                obs::FlowPhase::Start,
                                (t * 1e9).round() as u64,
                                vec![("stream", obs::ArgValue::U64(s as u64))],
                            );
                        }
                    }
                }
                AdmitVerdict::Spill => {
                    cell.metrics.overflow.spilled += 1;
                    cell.metrics.ever_spilled = true;
                    cell.last_spill = t;
                    cell.pend_spill += 1;
                    cell.pend_spill_t = t;
                    streams[sp].spilled_n += 1;
                }
                AdmitVerdict::Shed => {
                    // A quota breach sheds the offending tenant's own
                    // arrival — never admitted, never journaled, so it
                    // consumes nothing downstream.
                    cell.metrics.overflow.shed += 1;
                    cell.pend_shed += 1;
                    cell.pend_shed_t = t;
                    streams[sp].shed_n += 1;
                }
            }
            streams[sp].seen += 1;
        }

        // In drain mode `duration` is a universal local event: every
        // cell re-evaluates dispatch exactly there, so partial tails
        // drain no matter how the domains were partitioned (the time is
        // absolute, hence scheduler-invariant).
        if env.cfg.drain && now == env.cfg.duration {
            for cell in shards.iter_mut() {
                cell.active = true;
            }
        }

        // ---- Fault injections due now (a crash beats any commit
        // scheduled for the same instant: faults process first).
        for cell in shards.iter_mut() {
            while cell.fault_idx < cell.faults.len() && cell.faults[cell.fault_idx].at <= now {
                let ev = cell.faults[cell.fault_idx];
                cell.fault_idx += 1;
                cell.active = true;
                match ev.kind {
                    FaultKind::Crash => {
                        let r = env.recovery.expect("faults imply fault tolerance");
                        cell.metrics.crashes += 1;
                        if cell.phase.inflight_len() > 0 {
                            cell.metrics.lost_batches += 1;
                        }
                        // Device state is gone: queue and in-flight batch
                        // alike. The journal still covers every admitted
                        // seq, so nothing is lost — only re-matched.
                        cell.queue.clear();
                        let crashed_at = match cell.phase {
                            // A crash during recovery restarts the
                            // restart but keeps the original outage start
                            // for the latency histogram.
                            Phase::Restarting { crashed_at, .. }
                            | Phase::Replaying { crashed_at, .. } => crashed_at,
                            _ => ev.at,
                        };
                        cell.phase = Phase::Restarting {
                            until: ev.at + r.restart_latency,
                            crashed_at,
                        };
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.set_now_ns((ev.at * 1e9).round() as u64);
                            rec.record_instant(obs::SpanCategory::Crash, "crash", vec![]);
                        }
                    }
                    FaultKind::Hang { seconds } => {
                        cell.metrics.hangs += 1;
                        let prev = std::mem::replace(&mut cell.phase, Phase::Idle);
                        cell.phase = match prev {
                            Phase::Busy(mut inf) => {
                                // The stuck kernel finishes late.
                                inf.until += seconds;
                                Phase::Hung {
                                    until: ev.at + seconds,
                                    resume: Some(inf),
                                }
                            }
                            Phase::Hung { until, resume } => Phase::Hung {
                                until: until.max(ev.at + seconds),
                                resume,
                            },
                            // Hanging a dead shard changes nothing.
                            p @ (Phase::Restarting { .. } | Phase::Replaying { .. }) => p,
                            // Idle or mid-checkpoint (snapshot abandoned).
                            _ => Phase::Hung {
                                until: ev.at + seconds,
                                resume: None,
                            },
                        };
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.set_now_ns((ev.at * 1e9).round() as u64);
                            rec.record_instant(obs::SpanCategory::Crash, "hang", vec![]);
                        }
                    }
                    FaultKind::Slow { factor, seconds } => {
                        cell.slow_until = ev.at + seconds;
                        cell.slow_factor = factor.max(1.0);
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.set_now_ns((ev.at * 1e9).round() as u64);
                            rec.record_instant(obs::SpanCategory::Crash, "slow", vec![]);
                        }
                    }
                    FaultKind::Partition { seconds } => {
                        // The shard is cut off, not down: it keeps
                        // servicing what it holds, but health checks
                        // see it unreachable until the window closes.
                        cell.metrics.partitions += 1;
                        cell.partitioned_until = cell.partitioned_until.max(ev.at + seconds);
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.set_now_ns((ev.at * 1e9).round() as u64);
                            rec.record_instant(
                                obs::SpanCategory::Partition,
                                "partition",
                                vec![(
                                    "until_ns",
                                    obs::ArgValue::U64(((ev.at + seconds) * 1e9).round() as u64),
                                )],
                            );
                        }
                    }
                    FaultKind::CorruptCheckpoint => {
                        // Flip the newest durable snapshot of every
                        // stream the shard checkpoints. Harmless until
                        // the next crash, when restore must fall back a
                        // generation and replay a longer journal.
                        let x = cell.idx;
                        let mut corrupted = 0u64;
                        for sc in streams.iter_mut() {
                            if env.placement.target_of(sc.idx) == x
                                && sc.state.corrupt_latest_snapshot()
                            {
                                corrupted += 1;
                            }
                        }
                        cell.metrics.corrupt_checkpoints += corrupted;
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.set_now_ns((ev.at * 1e9).round() as u64);
                            rec.record_instant(
                                obs::SpanCategory::Corruption,
                                "checkpoint_corruption",
                                vec![("streams", obs::ArgValue::U64(corrupted))],
                            );
                        }
                    }
                }
            }
        }

        // ---- Phase transitions due now (commits, hang ends, recovery
        // milestones, checkpoint completions).
        for cell in shards.iter_mut() {
            while cell.phase.next_event().is_some_and(|t| t <= now) {
                cell.active = true;
                let phase = std::mem::replace(&mut cell.phase, Phase::Idle);
                match phase {
                    Phase::Busy(inf) => {
                        commit_batch(*inf, cell, streams, env.sampler);
                    }
                    Phase::Hung { resume, .. } => {
                        cell.phase = match resume {
                            Some(inf) => Phase::Busy(inf),
                            None => Phase::Idle,
                        };
                    }
                    Phase::Restarting { until, crashed_at } => {
                        // Device is back; scan the snapshot and the
                        // journal to size the replay.
                        let r = env.recovery.expect("recovering implies fault tolerance");
                        let x = cell.idx;
                        let mut scanned = 0u64;
                        for sc in streams.iter() {
                            if env.placement.target_of(sc.idx) != x {
                                continue;
                            }
                            // Restore from the newest snapshot whose
                            // checksum verifies; every corrupt
                            // generation skipped is a fallback that
                            // widens the replay window.
                            let (snap, fallbacks) = sc.state.restore_snapshot();
                            cell.metrics.snapshot_fallbacks += fallbacks;
                            for &(seq, _) in sc.state.journal.iter() {
                                if seq < snap.admitted {
                                    cell.metrics.snapshot_restored += 1;
                                } else {
                                    cell.metrics.journal_replayed += 1;
                                }
                                scanned += 1;
                            }
                        }
                        cell.phase = Phase::Replaying {
                            until: until + r.replay_cost_per_entry * scanned as f64,
                            crashed_at,
                        };
                    }
                    Phase::Replaying { until, crashed_at } => {
                        // Rebuild the pending queue from the journal,
                        // suppressing seqs already delivered — the
                        // duplicate half of exactly-once replay.
                        cell.gpu.reset_memory();
                        let x = cell.idx;
                        for sc in streams.iter() {
                            if env.placement.target_of(sc.idx) != x {
                                continue;
                            }
                            let committed = sc.state.committed;
                            for &(seq, t) in sc.state.journal.iter() {
                                if seq < committed {
                                    cell.metrics.replay_duplicates += 1;
                                    continue;
                                }
                                cell.queue.push_back(QEntry {
                                    stream: sc.idx,
                                    seq,
                                    arrived: t,
                                    epoch: sc.epoch,
                                });
                                let fid = obs::FlowId::service(sc.idx as u32, seq);
                                if env.sampler.admits(fid) {
                                    if let Some(rec) = cell.gpu.obs.as_mut() {
                                        rec.record_flow(
                                            "replayed",
                                            fid,
                                            obs::FlowPhase::Step,
                                            (until * 1e9).round() as u64,
                                            vec![],
                                        );
                                    }
                                }
                            }
                        }
                        cell.metrics.recoveries += 1;
                        cell.metrics.recovery_seconds.record(until - crashed_at);
                        cell.last_activity = cell.last_activity.max(until);
                        let restored = cell.queue.len() as u64;
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            let t0 = (crashed_at * 1e9).round() as u64;
                            let t1 = (until * 1e9).round() as u64;
                            rec.record_complete(
                                obs::SpanCategory::Recovery,
                                "recovery",
                                t0,
                                t1.saturating_sub(t0),
                                vec![("restored", obs::ArgValue::U64(restored))],
                            );
                        }
                    }
                    Phase::Checkpointing { until, started } => {
                        let r = env.recovery.expect("checkpointing implies fault tolerance");
                        let x = cell.idx;
                        for sc in streams.iter_mut() {
                            if env.placement.target_of(sc.idx) == x {
                                sc.state.checkpoint(r.snapshot_retention);
                            }
                        }
                        cell.metrics.checkpoints += 1;
                        cell.next_ckpt = until + r.checkpoint_interval;
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            let t0 = (started * 1e9).round() as u64;
                            let t1 = (until * 1e9).round() as u64;
                            rec.record_complete(
                                obs::SpanCategory::Checkpoint,
                                "checkpoint",
                                t0,
                                t1.saturating_sub(t0),
                                vec![],
                            );
                        }
                    }
                    Phase::Idle => unreachable!("idle phases have no events"),
                }
            }
        }

        // ---- Wake and checkpoint-edge activations. Both are exact
        // event times the domain itself scheduled, so the comparisons
        // fire identically no matter how the domains are partitioned.
        for cell in shards.iter_mut() {
            if cell.wake == Some(now) {
                cell.active = true;
                cell.wake = None;
            }
            if env.recovery.is_some()
                && matches!(cell.phase, Phase::Idle)
                && cell.next_ckpt == now
                && cell.next_ckpt < env.cfg.duration
            {
                cell.active = true;
            }
        }
    }

    /// Checkpoint starts, deadline shedding and batch dispatch for every
    /// cell activated at the current instant.
    fn post(&mut self, env: &EpochEnv) {
        let Domain {
            now,
            shards,
            streams,
        } = self;
        let now = *now;
        let engine = MatchEngine::default();
        for cell in shards.iter_mut() {
            if !cell.active {
                continue;
            }
            cell.active = false;
            let x = cell.idx;

            // ---- Start a periodic checkpoint on an idle shard (only
            // while arrivals still flow; the drain tail never pauses
            // for a snapshot it won't need).
            if let Some(r) = env.recovery {
                if now < env.cfg.duration
                    && matches!(cell.phase, Phase::Idle)
                    && now >= cell.next_ckpt
                {
                    let serves_traffic = streams
                        .iter()
                        .any(|sc| env.placement.target_of(sc.idx) == x && sc.rate > 0.0);
                    if serves_traffic {
                        cell.phase = Phase::Checkpointing {
                            until: now + r.checkpoint_cost,
                            started: now,
                        };
                    }
                }
            }
            if !matches!(cell.phase, Phase::Idle) {
                continue;
            }

            // ---- Graceful degradation: in shedding mode, drop queued
            // arrivals past the deadline oldest-first. A shed entry
            // advances the commit watermark like a delivery (it is
            // durable — replay never resurrects it) but counts in
            // `overflow.shed`, not `matched`.
            if env.shedding[x] {
                let mut shed_now = 0u64;
                while let Some(front) = cell.queue.front().copied() {
                    if now - front.arrived <= env.shed_deadline {
                        break;
                    }
                    cell.queue.pop_front();
                    let sp = spos(streams, front.stream);
                    let st = &mut streams[sp].state;
                    if front.seq >= st.committed {
                        debug_assert_eq!(front.seq, st.committed);
                        st.committed = front.seq + 1;
                    }
                    streams[sp].shed_n += 1;
                    shed_now += 1;
                    let fid = obs::FlowId::service(front.stream as u32, front.seq);
                    if env.sampler.admits(fid) {
                        if let Some(rec) = cell.gpu.obs.as_mut() {
                            rec.record_flow(
                                "shed",
                                fid,
                                obs::FlowPhase::End,
                                (now * 1e9).round() as u64,
                                vec![],
                            );
                        }
                    }
                }
                if shed_now > 0 {
                    cell.metrics.overflow.shed += shed_now;
                    if let Some(rec) = cell.gpu.obs.as_mut() {
                        rec.set_now_ns((now * 1e9).round() as u64);
                        rec.record_instant(
                            obs::SpanCategory::Shed,
                            "shed",
                            vec![("count", obs::ArgValue::U64(shed_now))],
                        );
                    }
                }
            }

            let pending = cell.queue.len();
            let feeds = streams.iter().any(|sc| {
                env.placement.target_of(sc.idx) == x
                    && sc.rate > 0.0
                    && sc.seen < sc.pattern.due(sc.rate, env.cfg.duration)
            });
            if pending == 0 && !feeds {
                cell.wake = None;
                continue;
            }
            cell.metrics.queue_depth.record(pending as f64);

            if pending < env.threshold {
                // Aggregate: sleep until enough arrivals are due to
                // fill the threshold, or drain the tail at the end.
                let wake = fill_wake(streams, env.placement, x, env.threshold - pending);
                match wake {
                    Some(w) if w <= env.cfg.duration => {
                        cell.wake = Some(w);
                        continue;
                    }
                    _ => {
                        if pending == 0 {
                            cell.wake = None;
                            continue;
                        }
                    }
                }
            }
            if now >= env.cfg.duration && !env.cfg.drain {
                cell.wake = None;
                continue;
            }

            // ---- Dispatch.
            cell.wake = None;
            let batch = pending.min(env.cfg.max_batch);
            let mut entries = Vec::with_capacity(batch);
            for _ in 0..batch {
                entries.push(cell.queue.pop_front().expect("pending counted"));
            }
            let msgs: Vec<Envelope> = entries
                .iter()
                .map(|e| {
                    let pool = streams[spos(streams, e.stream)].msgs;
                    pool[e.seq as usize % pool.len()]
                })
                .collect();
            let reqs: Vec<RecvRequest> = msgs
                .iter()
                .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
                .collect();

            flush_spills(cell);
            if let Some(rec) = cell.gpu.obs.as_mut() {
                // Pin the recorder to the service clock so the launch
                // spans the engine records start at the dispatch
                // instant, and span the batch's accumulation time.
                let now_ns = (now * 1e9).round() as u64;
                rec.set_now_ns(now_ns);
                let oldest = entries.first().map_or(now, |e| e.arrived);
                let t0 = ((oldest * 1e9).round() as u64).min(now_ns);
                rec.record_complete(
                    obs::SpanCategory::BatchAdmission,
                    "batch",
                    t0,
                    now_ns - t0,
                    vec![
                        ("batch", obs::ArgValue::U64(batch as u64)),
                        ("pending", obs::ArgValue::U64(pending as u64)),
                    ],
                );
                for e in &entries {
                    let fid = obs::FlowId::service(e.stream as u32, e.seq);
                    if env.sampler.admits(fid) {
                        rec.record_flow("dispatched", fid, obs::FlowPhase::Step, now_ns, vec![]);
                    }
                }
            }

            // Screen the batch through the digest pre-filters before
            // touching the device. Service streams are self-matching
            // (each request mirrors a message exactly), so nothing is
            // ever rejected here and the artefacts stay byte-identical
            // with the screen off — but the counter is the operator's
            // canary for mismatched traffic, and the debug assert pins
            // the soundness claim on every test run.
            if env.cfg.prefilter {
                let screen = screen_batch(&msgs, &reqs);
                debug_assert!(
                    !screen.skip_launch(),
                    "service batches are self-matching; the screen must keep them"
                );
                cell.metrics.prefilter_rejections += screen.rejected_msgs + screen.rejected_reqs;
            }

            // The shard's resident device: reclaim the arena, not the
            // device.
            let choice = cell.active_choice;
            cell.gpu.reset_memory();
            let report = engine
                .match_with(cell.gpu, choice, &msgs, &reqs)
                .expect("no wildcards in service traffic");
            debug_assert_eq!(report.matches as usize, batch);
            let factor = if now < cell.slow_until {
                cell.slow_factor
            } else {
                1.0
            };
            let service = report.seconds * factor;
            cell.phase = Phase::Busy(Box::new(InFlight {
                until: now + service,
                entries,
                report,
                service,
            }));
        }
    }

    /// Earliest pending local event strictly after which nothing can
    /// happen in this domain without outside input.
    fn next_event(&self, env: &EpochEnv) -> f64 {
        let mut next = f64::INFINITY;
        for cell in &self.shards {
            if let Some(t) = cell.phase.next_event() {
                next = next.min(t);
            }
            if cell.fault_idx < cell.faults.len() {
                next = next.min(cell.faults[cell.fault_idx].at);
            }
            if let Some(w) = cell.wake {
                next = next.min(w);
            }
            if env.recovery.is_some()
                && self.now < env.cfg.duration
                && matches!(cell.phase, Phase::Idle)
                && cell.next_ckpt > self.now
                && cell.next_ckpt < env.cfg.duration
            {
                next = next.min(cell.next_ckpt);
            }
        }
        if env.cfg.drain && env.cfg.duration > self.now {
            // Drain mode: every domain visits `duration` — the final
            // admission sweep and the universal tail-dispatch event.
            next = next.min(env.cfg.duration);
        }
        next
    }

    /// Advance through local events up to (and including, via the final
    /// boundary) `until`. With `until = ∞` the domain runs to local
    /// completion.
    fn advance(&mut self, env: &EpochEnv, until: f64) {
        loop {
            self.post(env);
            let next = self.next_event(env);
            if next.is_finite() && next > self.now && next < until {
                self.now = next;
                self.boundary(env);
                continue;
            }
            if until.is_finite() && until > self.now {
                self.now = until;
                self.boundary(env);
            }
            break;
        }
    }
}

fn uf_find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

fn uf_union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra != rb {
        // Union by minimum so every root is its group's smallest member
        // — groups come out ordered and internally ascending for free.
        parent[ra.max(rb)] = ra.min(rb);
    }
}

/// Partition shards and stream slots into groups closed under every
/// cross-shard interaction that can happen between barriers: a stream's
/// state is written by the shard currently serving it (admission,
/// commits, checkpoints, shedding) and read by its home shard (recovery
/// scans), and queued or in-flight entries tie their stream to the
/// holding shard. Shards in different groups share nothing until the
/// next barrier, so their domains may run on different threads.
///
/// Nodes `0..n` are shards, `n..n + m` are stream slots; each returned
/// group is `(shards, streams)`, both ascending, groups ordered by
/// their smallest shard.
fn conflict_groups(
    n: usize,
    m: usize,
    placement: &ShardPlacement,
    cells: &[Option<ShardCell>],
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut parent: Vec<usize> = (0..n + m).collect();
    for j in 0..m {
        let h = placement.home_of_slot(j);
        uf_union(&mut parent, h, placement.redirect_of(h));
        uf_union(&mut parent, n + j, placement.target_of(j));
        uf_union(&mut parent, n + j, h);
    }
    for (x, cell) in cells.iter().enumerate() {
        let cell = cell.as_ref().expect("cells are home between epochs");
        for e in &cell.queue {
            uf_union(&mut parent, x, n + e.stream);
        }
        match &cell.phase {
            Phase::Busy(f)
            | Phase::Hung {
                resume: Some(f), ..
            } => {
                for e in &f.entries {
                    uf_union(&mut parent, x, n + e.stream);
                }
            }
            _ => {}
        }
    }
    // Every stream node is unioned with a shard node and unions pick
    // the minimum as root, so group roots are always shard indices.
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); n];
    for i in 0..n + m {
        let r = uf_find(&mut parent, i);
        debug_assert!(r < n, "group roots are shards");
        if i < n {
            groups[r].0.push(i);
        } else {
            groups[r].1.push(i - n);
        }
    }
    groups.retain(|(s, _)| !s.is_empty());
    groups
}

/// One supervisor health tick at simulated time `tick`: liveness
/// bookkeeping, failover of a down shard's streams to the healthiest
/// responsive peer, and handback once a home shard has recovered and
/// its stand-in has drained the inherited stream. Runs at the
/// coordinator with every cell home, exactly as the legacy loop ran it
/// on the global clock.
#[allow(clippy::needless_range_loop)]
fn supervisor_tick(
    sup: &mut Supervisor,
    tick: f64,
    placement: &mut ShardPlacement,
    cells: &mut [Option<ShardCell>],
    streams: &mut [Option<StreamCell>],
    capacity: usize,
    sampler: obs::FlowSampler,
) {
    let n = cells.len();
    let m = streams.len();
    for x in 0..n {
        let (responsive, unreachable) = {
            let c = cells[x].as_ref().unwrap();
            (c.phase.responsive(), c.partitioned_until > tick)
        };
        if !unreachable {
            sup.note_reachable(x);
        }
        if responsive && !unreachable {
            sup.note_up(x);
            // Observe the same backlog admission gates on (queued plus
            // in-flight), else a pegged shard alternating full queue /
            // full batch never looks overloaded.
            let depth = {
                let c = cells[x].as_ref().unwrap();
                c.queue.len() + c.phase.inflight_len()
            };
            sup.observe_depth(x, depth, capacity);
            continue;
        }
        // A partition is diagnosed apart from a crash or hang: the
        // shard is healthy, the path is cut, so the grace period
        // applies but crash-loop detection never shortcuts it.
        let fail_over = if unreachable {
            sup.note_unreachable(x, tick)
        } else {
            sup.note_down(x, tick)
        };
        if !fail_over {
            continue;
        }
        // Fail the down shard's streams over to the healthiest
        // responsive peer.
        let moved: Vec<usize> = (0..m).filter(|&s| placement.target_of(s) == x).collect();
        if moved.is_empty() {
            continue;
        }
        let target = (0..n)
            .filter(|&u| {
                let c = cells[u].as_ref().unwrap();
                u != x && c.phase.responsive() && c.partitioned_until <= tick
            })
            .min_by_key(|&u| {
                let c = cells[u].as_ref().unwrap();
                (c.queue.len() + c.phase.inflight_len(), u)
            });
        let Some(t) = target else { continue };
        for s in moved {
            // Failover rewrites the slot's *home shard* redirect, the
            // temporary second hop; the durable home assignment is
            // migration's to change.
            let h = placement.home_of_slot(s);
            if t == h {
                placement.restore(h);
            } else {
                placement.redirect(h, t);
            }
            // The hung shard keeps its device state, so drop its queued
            // copies; the journal is the durable source the target
            // inherits. Any in-flight copies commit late and are
            // suppressed by the watermark.
            cells[x].as_mut().unwrap().queue.retain(|e| e.stream != s);
            // Bump the stream's epoch as it changes hands: any copy the
            // old owner still holds in flight (a hung batch, a
            // partitioned shard that kept servicing) commits under the
            // stale epoch and is fenced at the commit point, so late
            // work can never double-commit against the new owner.
            let sc = streams[s].as_mut().unwrap();
            sc.epoch += 1;
            let epoch = sc.epoch;
            let committed = sc.state.committed;
            let mut transferred = 0u64;
            let inherited: Vec<QEntry> = sc
                .state
                .journal
                .iter()
                .filter(|&&(seq, _)| seq >= committed)
                .map(|&(seq, tm)| QEntry {
                    stream: s,
                    seq,
                    arrived: tm,
                    epoch,
                })
                .collect();
            let home = cells[h].as_ref().unwrap().home_choice;
            let tc = cells[t].as_mut().unwrap();
            let tick_ns = (tick * 1e9).round() as u64;
            for e in inherited {
                let fid = obs::FlowId::service(e.stream as u32, e.seq);
                tc.queue.push_back(e);
                transferred += 1;
                if sampler.admits(fid) {
                    if let Some(rec) = tc.gpu.obs.as_mut() {
                        rec.record_flow(
                            "failover",
                            fid,
                            obs::FlowPhase::Step,
                            tick_ns,
                            vec![("from", obs::ArgValue::U64(x as u64))],
                        );
                    }
                }
            }
            tc.metrics.transferred_in += transferred;
            // Inherited streams keep the ordering their home engine
            // promised: fall back to the stricter discipline while
            // serving them.
            if strictness(home) > strictness(tc.active_choice) {
                tc.active_choice = home;
                tc.metrics.engine_fallbacks += 1;
            }
            if let Some(rec) = tc.gpu.obs.as_mut() {
                rec.set_now_ns((tick * 1e9).round() as u64);
                rec.record_instant(
                    obs::SpanCategory::Failover,
                    "failover",
                    vec![
                        ("stream", obs::ArgValue::U64(s as u64)),
                        ("from", obs::ArgValue::U64(x as u64)),
                        ("transferred", obs::ArgValue::U64(transferred)),
                    ],
                );
            }
        }
        cells[x].as_mut().unwrap().metrics.failovers_out += 1;
        cells[t].as_mut().unwrap().metrics.failovers_in += 1;
    }
    // Handback: once a home shard is responsive again and its failover
    // target has drained the inherited streams, route them home.
    for h in 0..n {
        let t = placement.redirect_of(h);
        let home_ok = {
            let c = cells[h].as_ref().unwrap();
            // A partitioned home must heal before it takes its keys
            // back, or fresh admissions would land behind the cut.
            c.phase.responsive() && c.partitioned_until <= tick
        };
        if t == h || !home_ok {
            continue;
        }
        let draining = {
            let tc = cells[t].as_ref().unwrap();
            // A crashed stand-in looks drained — the crash cleared its
            // queue — but it still owns the inherited streams'
            // un-replayed journal windows, and its replay skips any
            // stream routed away in the meantime. Hold the handback
            // until the recovery has rebuilt and re-committed them.
            tc.phase.dark()
                || (0..m).any(|s| {
                    placement.home_of_slot(s) == h
                        && (tc.queue.iter().any(|e| e.stream == s) || tc.phase.holds_stream(s))
                })
        };
        if draining {
            continue;
        }
        placement.restore(h);
        let tc = cells[t].as_mut().unwrap();
        if !(0..m).any(|u| placement.home_of_slot(u) != t && placement.target_of(u) == t) {
            tc.active_choice = tc.home_choice;
        }
        if let Some(rec) = tc.gpu.obs.as_mut() {
            rec.set_now_ns((tick * 1e9).round() as u64);
            rec.record_instant(
                obs::SpanCategory::Failover,
                "handback",
                vec![("stream", obs::ArgValue::U64(h as u64))],
            );
        }
    }
}

/// One reshard planner barrier at simulated time `tick`: execute (or
/// abort) the in-flight migration, then plan the next one from
/// barrier-visible backlogs. Runs at the coordinator with every cell
/// home, like [`supervisor_tick`]. Returns `true` when routing changed
/// and every cell must re-evaluate dispatch.
///
/// Execution repurposes the failover journal-window transfer as a
/// drain-transfer-handback: drop the source's undispatched queue copies
/// (the journal is the durable source of truth), re-enqueue the window
/// `[committed, admitted)` at the target in admission order, then
/// rebind the slot's durable home via [`ShardPlacement::migrate`]. Any
/// copy still in flight at a third shard commits first and the
/// transferred duplicate is suppressed by the commit watermark — the
/// same exactly-once argument failover relies on (`DESIGN.md` §13).
fn reshard_tick(
    planner: &mut ReshardPlanner,
    tick: f64,
    placement: &mut ShardPlacement,
    cells: &mut [Option<ShardCell>],
    streams: &mut [Option<StreamCell>],
    sampler: obs::FlowSampler,
) -> bool {
    let n = cells.len();
    let m = streams.len();
    let tick_ns = (tick * 1e9).round() as u64;
    if let Some(plan) = planner.pending {
        let PlannedMigration {
            slot,
            from,
            to,
            planned_at,
        } = plan;
        let healthy = |x: usize| {
            let c = cells[x].as_ref().unwrap();
            c.phase.responsive() && c.partitioned_until <= tick
        };
        let from_ok = healthy(from);
        let to_ok = healthy(to);
        let routed_clean = placement.redirect_of(from) == from && placement.redirect_of(to) == to;
        if !from_ok || !to_ok || !routed_clean {
            // A crash, hang or failover intervened between plan and
            // execution. Nothing has moved yet — routing only changes
            // at the migrate() below — so aborting is a pure
            // bookkeeping rollback.
            planner.pending = None;
            planner.aborted += 1;
            if let Some(rec) = cells[from].as_mut().unwrap().gpu.obs.as_mut() {
                rec.set_now_ns(tick_ns);
                rec.record_instant(
                    obs::SpanCategory::Migration,
                    "migration_abort",
                    vec![
                        ("slot", obs::ArgValue::U64(slot as u64)),
                        ("to", obs::ArgValue::U64(to as u64)),
                    ],
                );
            }
            return false;
        }
        if cells[from].as_ref().unwrap().phase.holds_stream(slot) {
            // The source still has the slot's entries on device; they
            // commit at batch end. Wait for the next barrier.
            return false;
        }
        // ---- Drain: the source's queued copies die here; the journal
        // window is the durable hand-off.
        let fc = cells[from].as_mut().unwrap();
        let before = fc.queue.len();
        fc.queue.retain(|e| e.stream != slot);
        let drained = (before - fc.queue.len()) as u64;
        fc.metrics.migrations_out += 1;
        if let Some(rec) = fc.gpu.obs.as_mut() {
            rec.set_now_ns(tick_ns);
            rec.record_instant(
                obs::SpanCategory::Migration,
                "migration_drain",
                vec![
                    ("slot", obs::ArgValue::U64(slot as u64)),
                    ("drained", obs::ArgValue::U64(drained)),
                ],
            );
        }
        // ---- Transfer: re-enqueue the journal window at the target in
        // admission order, joining each sampled arrival's existing
        // admission→match flow chain.
        let sc = streams[slot].as_ref().unwrap();
        let committed = sc.state.committed;
        let window: Vec<QEntry> = sc
            .state
            .journal
            .iter()
            .filter(|&&(seq, _)| seq >= committed)
            .map(|&(seq, tm)| QEntry {
                stream: slot,
                seq,
                arrived: tm,
                epoch: sc.epoch,
            })
            .collect();
        let mut transferred = 0u64;
        let tc = cells[to].as_mut().unwrap();
        for e in window {
            let fid = obs::FlowId::service(e.stream as u32, e.seq);
            tc.queue.push_back(e);
            transferred += 1;
            if sampler.admits(fid) {
                if let Some(rec) = tc.gpu.obs.as_mut() {
                    rec.record_flow(
                        "migrated",
                        fid,
                        obs::FlowPhase::Step,
                        tick_ns,
                        vec![("from", obs::ArgValue::U64(from as u64))],
                    );
                }
            }
        }
        tc.metrics.transferred_in += transferred;
        tc.metrics.migrations_in += 1;
        if let Some(rec) = tc.gpu.obs.as_mut() {
            let t0 = (planned_at * 1e9).round() as u64;
            rec.record_complete(
                obs::SpanCategory::Migration,
                "migration_transfer",
                t0,
                tick_ns.saturating_sub(t0),
                vec![
                    ("slot", obs::ArgValue::U64(slot as u64)),
                    ("from", obs::ArgValue::U64(from as u64)),
                    ("to", obs::ArgValue::U64(to as u64)),
                    ("transferred", obs::ArgValue::U64(transferred)),
                ],
            );
        }
        // ---- Handback: rebind the slot's durable home.
        placement.migrate(slot, to);
        if let Some(rec) = cells[from].as_mut().unwrap().gpu.obs.as_mut() {
            rec.set_now_ns(tick_ns);
            rec.record_instant(
                obs::SpanCategory::Migration,
                "migration_handback",
                vec![
                    ("slot", obs::ArgValue::U64(slot as u64)),
                    ("to", obs::ArgValue::U64(to as u64)),
                ],
            );
        }
        planner.pending = None;
        planner.completed += 1;
        return true;
    }
    if !planner.may_plan() {
        return false;
    }
    // ---- Plan: hot/cold from barrier-visible backlogs; shards that
    // are down or entangled in a failover redirect are ineligible.
    let backlogs: Vec<Option<usize>> = (0..n)
        .map(|x| {
            let c = cells[x].as_ref().unwrap();
            (c.phase.responsive() && c.partitioned_until <= tick && placement.redirect_of(x) == x)
                .then(|| c.queue.len() + c.phase.inflight_len())
        })
        .collect();
    let Some((hot, cold)) = planner.pick(&backlogs) else {
        return false;
    };
    // Move the lowest live slot homed on the hot shard.
    let slot = (0..m)
        .find(|&j| placement.home_of_slot(j) == hot && streams[j].as_ref().unwrap().rate > 0.0);
    let Some(slot) = slot else { return false };
    planner.pending = Some(PlannedMigration {
        slot,
        from: hot,
        to: cold,
        planned_at: tick,
    });
    if let Some(rec) = cells[hot].as_mut().unwrap().gpu.obs.as_mut() {
        rec.set_now_ns(tick_ns);
        rec.record_instant(
            obs::SpanCategory::Migration,
            "migration_plan",
            vec![
                ("slot", obs::ArgValue::U64(slot as u64)),
                ("to", obs::ArgValue::U64(cold as u64)),
            ],
        );
    }
    false
}

/// Close one scheduler epoch for the wall profiler: the barrier-wait
/// bucket is the residual `epoch total − worker-measured − supervisor`,
/// so the four buckets partition each shard's measured epoch total
/// exactly, by construction. Runs on the coordinator after every worker
/// thread has joined (their relaxed lane adds are ordered before these
/// reads by the join).
fn close_wall_epoch(
    wp: Option<&obs::wallprof::WallProfiler>,
    pre_lanes: &[[u64; 4]],
    epoch_wall_start: std::time::Instant,
    epoch_offset_ns: u64,
    epoch: u64,
    sup_ns: u64,
) {
    use obs::wallprof::WallBucket;
    let Some(wp) = wp else { return };
    let total = epoch_wall_start.elapsed().as_nanos() as u64;
    for (x, before) in pre_lanes.iter().enumerate() {
        let after = wp.bucket_ns(x);
        let compute = after[WallBucket::Compute as usize] - before[WallBucket::Compute as usize];
        let backpressure =
            after[WallBucket::Backpressure as usize] - before[WallBucket::Backpressure as usize];
        let worker = compute + backpressure;
        wp.add(x, WallBucket::SupervisorSync, sup_ns);
        let wait = total.saturating_sub(worker + sup_ns);
        wp.add(x, WallBucket::BarrierWait, wait);
        wp.note_epoch(x, total.max(worker + sup_ns));
        wp.record_epoch(
            x,
            epoch,
            epoch_offset_ns,
            [compute, wait, backpressure, sup_ns],
        );
    }
}

/// The observability hooks threaded through a scheduled run: the
/// shared span recorder (virtual clock), the causal-flow sampler, and
/// the wall-clock profiler. Bundled so the scheduler entry point stays
/// a scheduling signature, not an instrumentation one.
pub(crate) struct ObsHooks<'a> {
    pub(crate) sched_rec: Option<&'a obs::sync::SharedSpanRecorder>,
    pub(crate) flow_sampler: obs::FlowSampler,
    pub(crate) wallprof: Option<&'a obs::wallprof::WallProfiler>,
}

/// Per-run knobs threaded from the service into a scheduled run: the
/// shared queue fill limits, the optional reshard policy and whether to
/// record per-stream completion sequences. Bundled for the same reason
/// as [`ObsHooks`].
pub(crate) struct RunKnobs {
    pub(crate) fill: FillLimits,
    pub(crate) reshard: Option<ReshardPolicy>,
    pub(crate) record_completions: bool,
}

/// Per-stream accounting handed back for tenant aggregation, in
/// slot-index order.
pub(crate) struct StreamOutcome {
    pub(crate) tenant: u32,
    pub(crate) arrivals: u64,
    pub(crate) admitted: u64,
    pub(crate) spilled: u64,
    pub(crate) shed: u64,
    pub(crate) matched: u64,
}

/// Everything the coordinator hands back to the service for
/// finalisation: shard-index order for the shard vectors, slot-index
/// order for `completions` and `streams`.
pub(crate) struct SchedOutcome {
    pub(crate) metrics: Vec<ShardMetrics>,
    pub(crate) completions: Option<Vec<Vec<u64>>>,
    pub(crate) busy: Vec<f64>,
    pub(crate) last_activity: Vec<f64>,
    pub(crate) last_spill: Vec<f64>,
    pub(crate) backlog: Vec<u64>,
    pub(crate) streams: Vec<StreamOutcome>,
    /// Completed / aborted migration counts (zero without resharding).
    pub(crate) migrations: (u64, u64),
}

/// Drive a full service run under the configured [`Scheduler`].
///
/// The coordinator owns every shard/stream cell between epochs. Each
/// epoch it picks a conservative horizon (the next supervisor barrier,
/// bounded by the [`fabric::WatermarkExchange`] over all domain
/// clocks), partitions the cells into conflict groups, and advances
/// each group's domain to the horizon — inline under
/// [`Scheduler::GlobalClock`], on one scoped OS thread per group under
/// [`Scheduler::ThreadPerShard`]. At the barrier it applies supervisor
/// work (crash notifications, health ticks, failover/handback) with
/// every cell home, then loops. Without a supervisor there are no
/// barriers: the single epoch runs to completion.
pub(crate) fn run_scheduled(
    cfg: &ShardedServiceConfig,
    placement: &mut ShardPlacement,
    service_shards: &mut [ServiceShard],
    service_streams: &[ServiceStream],
    fault_tolerance: Option<&FaultTolerance>,
    knobs: RunKnobs,
    hooks: ObsHooks<'_>,
) -> SchedOutcome {
    let ObsHooks {
        sched_rec,
        flow_sampler,
        wallprof,
    } = hooks;
    let RunKnobs {
        fill,
        reshard,
        record_completions,
    } = knobs;
    let n = service_shards.len();
    let m = service_streams.len();
    let capacity = cfg.queue_capacity.max(cfg.max_batch);
    let threshold = cfg.batch_threshold.clamp(1, cfg.max_batch);
    let recovery: Option<RecoveryConfig> = fault_tolerance.map(|f| f.recovery);
    let mut supervisor: Option<Supervisor> = fault_tolerance
        .and_then(|f| f.supervisor.as_ref())
        .map(|&sc| Supervisor::new(n, sc));
    let mut planner: Option<ReshardPlanner> = reshard.map(ReshardPlanner::new);
    let mut finished_planner: Option<(u64, u64)> = None;
    let mut sup_tick: Option<f64> = supervisor
        .as_ref()
        .map(|s| s.config().health_check_interval);
    let shed_deadline = supervisor
        .as_ref()
        .map_or(f64::INFINITY, |s| s.config().shed_deadline);

    let mut fault_lists: Vec<Vec<FaultEvent>> = vec![Vec::new(); n];
    if let Some(f) = fault_tolerance {
        for ev in f.plan.events() {
            fault_lists[ev.shard].push(*ev);
        }
    }

    let mut shard_cells: Vec<Option<ShardCell>> = Vec::with_capacity(n);
    for (idx, (sh, faults)) in service_shards.iter_mut().zip(fault_lists).enumerate() {
        let ServiceShard { gpu, choice } = sh;
        let choice = *choice;
        shard_cells.push(Some(ShardCell {
            idx,
            gpu,
            queue: VecDeque::new(),
            phase: Phase::Idle,
            metrics: ShardMetrics::new(idx, engine_label(choice)),
            busy: 0.0,
            last_activity: 0.0,
            last_spill: f64::NEG_INFINITY,
            slow_until: f64::NEG_INFINITY,
            slow_factor: 1.0,
            partitioned_until: f64::NEG_INFINITY,
            next_ckpt: recovery.map_or(f64::INFINITY, |r| r.checkpoint_interval),
            active_choice: choice,
            home_choice: choice,
            faults,
            fault_idx: 0,
            pend_spill: 0,
            pend_spill_t: 0.0,
            pend_shed: 0,
            pend_shed_t: 0.0,
            wake: None,
            // Every shard evaluates dispatch once at t = 0, as the
            // legacy loop's first iteration did.
            active: true,
        }));
    }
    let mut stream_cells: Vec<Option<StreamCell>> = service_streams
        .iter()
        .enumerate()
        .map(|(idx, st)| {
            Some(StreamCell {
                idx,
                msgs: &st.msgs,
                rate: st.rate,
                state: StreamState::default(),
                seen: 0,
                epoch: 0,
                completions: record_completions.then(Vec::new),
                pattern: st.pattern,
                tenant: st.tenant,
                // Each run starts from a full, fresh bucket.
                qos: st.qos.clone(),
                spilled_n: 0,
                shed_n: 0,
                matched_n: 0,
            })
        })
        .collect();

    let mut wx = fabric::WatermarkExchange::new(n);
    let mut crash_seen = vec![0u64; n];
    let mut t_now = 0.0f64;
    let mut first = true;
    let run_start = std::time::Instant::now();
    let mut epoch_idx = 0u64;

    loop {
        let epoch_offset_ns = run_start.elapsed().as_nanos() as u64;
        let epoch_wall_start = std::time::Instant::now();
        // Lane snapshot the residual-bucket construction diffs against
        // at the end of the epoch.
        let pre_lanes: Vec<[u64; 4]> = wallprof
            .map(|wp| (0..n).map(|x| wp.bucket_ns(x)).collect())
            .unwrap_or_default();
        // ---- Liveness (legacy `work_live`, evaluated at the barrier).
        let arrivals_remain = stream_cells.iter().any(|c| {
            let c = c.as_ref().unwrap();
            c.rate > 0.0 && c.seen < c.pattern.due(c.rate, cfg.duration)
        });
        let redirect_active = (0..n).any(|h| placement.redirect_of(h) != h);
        let queues_nonempty = shard_cells
            .iter()
            .any(|c| !c.as_ref().unwrap().queue.is_empty());
        let phases_live = shard_cells
            .iter()
            .any(|c| !matches!(c.as_ref().unwrap().phase, Phase::Idle));
        let work_live = t_now < cfg.duration
            || phases_live
            || (cfg.drain && (redirect_active || arrivals_remain || queues_nonempty));
        let next_fault = shard_cells
            .iter()
            .filter_map(|c| {
                let c = c.as_ref().unwrap();
                c.faults.get(c.fault_idx).map(|ev| ev.at)
            })
            .fold(f64::INFINITY, f64::min);

        // ---- Epoch horizon: the next barrier (supervisor health tick
        // or reshard planner tick) while work is live, bounded
        // conservatively by the watermark exchange; the next fault when
        // the supervisor is merely waiting for one; unbounded otherwise
        // (the epoch runs to completion).
        let next_barrier = sup_tick
            .unwrap_or(f64::INFINITY)
            .min(planner.as_ref().map_or(f64::INFINITY, |p| p.next_tick));
        // Conservative lookahead: the tightest barrier cadence still in
        // play (an exhausted planner stops contributing barriers).
        let lookahead = match (
            supervisor
                .as_ref()
                .map(|s| s.config().health_check_interval),
            planner.as_ref().map(|p| p.policy.tick),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let horizon = match (lookahead, work_live) {
            (Some(la), true) => wx.safe_until(la).min(next_barrier),
            (Some(_), false) if next_fault.is_finite() => next_fault,
            _ => f64::INFINITY,
        };

        // ---- Partition into conflict groups and advance each domain.
        let shedding: Vec<bool> = (0..n)
            .map(|x| supervisor.as_ref().is_some_and(|s| s.is_shedding(x)))
            .collect();
        let env = EpochEnv {
            cfg: *cfg,
            capacity,
            threshold,
            recovery,
            placement,
            shedding: &shedding,
            shed_deadline,
            fill,
            sampler: flow_sampler,
        };
        let groups = match cfg.scheduler {
            Scheduler::GlobalClock => {
                vec![(
                    (0..n).collect::<Vec<usize>>(),
                    (0..m).collect::<Vec<usize>>(),
                )]
            }
            Scheduler::ThreadPerShard => conflict_groups(n, m, env.placement, &shard_cells),
        };
        let mut domains: Vec<Domain> = groups
            .iter()
            .map(|(gs, gt)| Domain {
                now: t_now,
                shards: gs
                    .iter()
                    .map(|&i| shard_cells[i].take().expect("cell is home"))
                    .collect(),
                streams: gt
                    .iter()
                    .map(|&i| stream_cells[i].take().expect("cell is home"))
                    .collect(),
            })
            .collect();

        let threaded = matches!(cfg.scheduler, Scheduler::ThreadPerShard) && domains.len() > 1;
        if threaded {
            let env = &env;
            let done = crossbeam::scope(|scope| {
                let (tx, rx) = crossbeam::channel::bounded(domains.len());
                for (gi, mut dom) in domains.drain(..).enumerate() {
                    let tx = tx.clone();
                    scope.spawn(move |_| {
                        let t0 = std::time::Instant::now();
                        if first {
                            dom.boundary(env);
                        }
                        dom.advance(env, horizon);
                        // Wall attribution: the domain's compute time is
                        // split evenly over its shards (relaxed adds —
                        // no effect on the simulated state).
                        let shard_ids: Vec<usize> = dom.shards.iter().map(|c| c.idx).collect();
                        if let Some(wp) = wallprof {
                            let per = t0.elapsed().as_nanos() as u64 / shard_ids.len() as u64;
                            for &i in &shard_ids {
                                wp.add(i, obs::wallprof::WallBucket::Compute, per);
                            }
                        }
                        let s0 = std::time::Instant::now();
                        if tx.send((gi, dom)).is_err() {
                            unreachable!("coordinator holds the receiver until all sends land");
                        }
                        if let Some(wp) = wallprof {
                            let per = s0.elapsed().as_nanos() as u64 / shard_ids.len() as u64;
                            for &i in &shard_ids {
                                wp.add(i, obs::wallprof::WallBucket::Backpressure, per);
                            }
                        }
                    });
                }
                drop(tx);
                let mut done: Vec<(usize, Domain)> = rx.iter().collect();
                done.sort_by_key(|&(gi, _)| gi);
                done
            })
            .expect("no panics in shard domains");
            domains = done.into_iter().map(|(_, d)| d).collect();
        } else {
            for dom in domains.iter_mut() {
                let t0 = std::time::Instant::now();
                if first {
                    dom.boundary(&env);
                }
                dom.advance(&env, horizon);
                if let Some(wp) = wallprof {
                    let per = t0.elapsed().as_nanos() as u64 / dom.shards.len().max(1) as u64;
                    for c in &dom.shards {
                        wp.add(c.idx, obs::wallprof::WallBucket::Compute, per);
                    }
                }
            }
        }
        first = false;

        // ---- Reassemble and report each domain's clock to the
        // watermark exchange.
        let mut t_end = t_now;
        for dom in domains {
            let Domain {
                now,
                shards,
                streams,
                ..
            } = dom;
            t_end = t_end.max(now);
            for c in shards {
                wx.advance(c.idx, now);
                let i = c.idx;
                shard_cells[i] = Some(c);
            }
            for c in streams {
                let i = c.idx;
                stream_cells[i] = Some(c);
            }
        }
        if let Some(rec) = sched_rec {
            let groups_n = groups.len() as u64;
            let threads_n = if threaded { groups.len() as u64 } else { 1 };
            rec.with(|r| {
                let t0 = (t_now * 1e9).round() as u64;
                let t1 = (t_end * 1e9).round() as u64;
                r.record_complete(
                    obs::SpanCategory::Epoch,
                    "epoch",
                    t0,
                    t1.saturating_sub(t0),
                    vec![
                        ("groups", obs::ArgValue::U64(groups_n)),
                        ("threads", obs::ArgValue::U64(threads_n)),
                    ],
                );
            });
        }
        if horizon.is_infinite() {
            close_wall_epoch(
                wallprof,
                &pre_lanes,
                epoch_wall_start,
                epoch_offset_ns,
                epoch_idx,
                0,
            );
            break;
        }
        t_now = horizon;

        // ---- Supervisor barrier: crash deltas first (the legacy loop
        // notified crashes as they happened, always before the next
        // tick), then every health tick due by now — a fault jump can
        // owe several — and wake every cell if any fired (shedding
        // state may have changed anywhere).
        let sup_start = std::time::Instant::now();
        let mut wake_all = false;
        if let Some(sup) = supervisor.as_mut() {
            for x in 0..n {
                let crashes = shard_cells[x].as_ref().unwrap().metrics.crashes;
                for _ in crash_seen[x]..crashes {
                    sup.note_crash(x);
                }
                crash_seen[x] = crashes;
            }
            while sup_tick.is_some_and(|t| t <= t_now) {
                let tick = sup_tick.unwrap();
                supervisor_tick(
                    sup,
                    tick,
                    placement,
                    &mut shard_cells,
                    &mut stream_cells,
                    capacity,
                    flow_sampler,
                );
                sup_tick = Some(tick + sup.config().health_check_interval);
                // Shedding state may have changed anywhere.
                wake_all = true;
            }
        }
        // Reshard planner barriers run after supervisor work at the
        // same instant: failover rewires first, so the planner sees
        // (and aborts on) any redirect it would race with.
        if let Some(pl) = planner.as_mut() {
            while pl.next_tick <= t_now {
                let tick = pl.next_tick;
                if reshard_tick(
                    pl,
                    tick,
                    placement,
                    &mut shard_cells,
                    &mut stream_cells,
                    flow_sampler,
                ) {
                    // Routing changed: every cell re-evaluates dispatch.
                    wake_all = true;
                }
                pl.next_tick += pl.policy.tick;
            }
            if pl.pending.is_none() && !pl.may_plan() {
                // Migration budget exhausted: stop scheduling planner
                // barriers so the final epoch can run to completion.
                let done = (pl.completed, pl.aborted);
                finished_planner = Some(done);
                planner = None;
            }
        }
        if wake_all {
            for c in shard_cells.iter_mut() {
                c.as_mut().unwrap().active = true;
            }
        }
        close_wall_epoch(
            wallprof,
            &pre_lanes,
            epoch_wall_start,
            epoch_offset_ns,
            epoch_idx,
            sup_start.elapsed().as_nanos() as u64,
        );
        epoch_idx += 1;
    }

    // ---- Hand everything back: shards in shard order, streams in
    // slot order.
    let mut out = SchedOutcome {
        metrics: Vec::with_capacity(n),
        completions: record_completions.then(|| Vec::with_capacity(m)),
        busy: Vec::with_capacity(n),
        last_activity: Vec::with_capacity(n),
        last_spill: Vec::with_capacity(n),
        backlog: Vec::with_capacity(n),
        streams: Vec::with_capacity(m),
        migrations: finished_planner
            .or(planner.map(|p| (p.completed, p.aborted)))
            .unwrap_or((0, 0)),
    };
    for cell in &mut shard_cells {
        let mut c = cell.take().expect("cell is home after the run");
        flush_spills(&mut c);
        out.busy.push(c.busy);
        out.last_activity.push(c.last_activity);
        out.last_spill.push(c.last_spill);
        out.backlog
            .push((c.queue.len() + c.phase.inflight_len()) as u64);
        out.metrics.push(c.metrics);
    }
    for cell in &mut stream_cells {
        let sc = cell.take().expect("cell is home after the run");
        if let Some(comps) = out.completions.as_mut() {
            comps.push(sc.completions.unwrap_or_default());
        }
        out.streams.push(StreamOutcome {
            tenant: sc.tenant,
            arrivals: sc.seen,
            admitted: sc.state.admitted,
            spilled: sc.spilled_n,
            shed: sc.shed_n,
            matched: sc.matched_n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_fixture(gpus: &mut [Gpu]) -> Vec<Option<ShardCell<'_>>> {
        gpus.iter_mut()
            .enumerate()
            .map(|(idx, gpu)| {
                Some(ShardCell {
                    idx,
                    gpu,
                    queue: VecDeque::new(),
                    phase: Phase::Idle,
                    metrics: ShardMetrics::new(idx, "matrix"),
                    busy: 0.0,
                    last_activity: 0.0,
                    last_spill: f64::NEG_INFINITY,
                    slow_until: f64::NEG_INFINITY,
                    slow_factor: 1.0,
                    partitioned_until: f64::NEG_INFINITY,
                    next_ckpt: f64::INFINITY,
                    active_choice: EngineChoice::Matrix,
                    home_choice: EngineChoice::Matrix,
                    faults: Vec::new(),
                    fault_idx: 0,
                    pend_spill: 0,
                    pend_spill_t: 0.0,
                    pend_shed: 0,
                    pend_shed_t: 0.0,
                    wake: None,
                    active: false,
                })
            })
            .collect()
    }

    #[test]
    fn identity_placement_yields_singleton_groups() {
        let mut gpus: Vec<Gpu> = (0..3)
            .map(|_| Gpu::new(simt_sim::GpuGeneration::PascalGtx1080))
            .collect();
        let cells = cell_fixture(&mut gpus);
        let placement = ShardPlacement::hashed(3);
        let groups = conflict_groups(3, 3, &placement, &cells);
        assert_eq!(
            groups,
            vec![(vec![0], vec![0]), (vec![1], vec![1]), (vec![2], vec![2])]
        );
    }

    #[test]
    fn redirects_and_foreign_queue_entries_merge_groups() {
        let mut gpus: Vec<Gpu> = (0..4)
            .map(|_| Gpu::new(simt_sim::GpuGeneration::PascalGtx1080))
            .collect();
        let mut cells = cell_fixture(&mut gpus);
        let mut placement = ShardPlacement::hashed(4);
        // Shard 2's traffic now lands on shard 0: {0, 2} conflict.
        placement.redirect(2, 0);
        // Shard 3 still holds an undrained entry of stream 1: {1, 3}.
        cells[3].as_mut().unwrap().queue.push_back(QEntry {
            stream: 1,
            seq: 0,
            arrived: 0.0,
            epoch: 0,
        });
        let groups = conflict_groups(4, 4, &placement, &cells);
        assert_eq!(
            groups,
            vec![(vec![0, 2], vec![0, 2]), (vec![1, 3], vec![1, 3])]
        );
    }

    #[test]
    fn migrated_slots_group_with_their_new_home() {
        let mut gpus: Vec<Gpu> = (0..3)
            .map(|_| Gpu::new(simt_sim::GpuGeneration::PascalGtx1080))
            .collect();
        let cells = cell_fixture(&mut gpus);
        // Four slots over three shards; slot 3 migrated from 0 to 2.
        let mut placement = ShardPlacement::with_assignments(3, vec![0, 1, 2, 0]);
        placement.migrate(3, 2);
        let groups = conflict_groups(3, 4, &placement, &cells);
        assert_eq!(
            groups,
            vec![
                (vec![0], vec![0]),
                (vec![1], vec![1]),
                (vec![2], vec![2, 3])
            ]
        );
    }

    #[test]
    fn scheduler_defaults_to_the_global_clock() {
        assert_eq!(Scheduler::default(), Scheduler::GlobalClock);
    }
}
