//! Message and completion types of the GPU messaging runtime.

use bytes::Bytes;
use msg_match::Envelope;

/// Handle to a posted receive, returned by
/// [`crate::domain::Domain::post_recv`] and reported back on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecvHandle(pub u64);

/// A delivered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Matching header the message travelled with.
    pub envelope: Envelope,
    /// Payload bytes (zero-copy shared buffer).
    pub payload: Bytes,
    /// Causal flow id assigned at admission when flow tracing sampled
    /// this message (`None` otherwise). Travels with the message across
    /// the transport so delivery-side trace points chain to the sender's.
    pub flow: Option<u64>,
}

/// A completed receive: which post matched which message.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The posted receive that matched.
    pub handle: RecvHandle,
    /// The message delivered into it.
    pub message: Message,
}

/// Statistics of one endpoint's communication kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointStats {
    /// Simulated cycles the communication kernel has consumed.
    pub kernel_cycles: u64,
    /// Simulated seconds (at the device clock).
    pub kernel_seconds: f64,
    /// Matches completed.
    pub matches: u64,
    /// Matching kernel launches performed.
    pub launches: u64,
    /// Messages sent from this endpoint.
    pub sent: u64,
    /// Payload bytes written to remote queues (GAS traffic out).
    pub bytes_sent: u64,
    /// Payload bytes landed in this endpoint's queues (GAS traffic in).
    pub bytes_received: u64,
    /// High-water mark of the unexpected (inbox) queue.
    pub umq_high_water: usize,
    /// High-water mark of the posted-receive queue.
    pub prq_high_water: usize,
    /// Queue entries the kernel-launch pre-filter screened out of match
    /// batches (see [`msg_match::prefilter`]); 0 when the domain runs
    /// with the pre-filter disabled.
    pub prefilter_rejections: u64,
    /// Entries probed against the pre-filter digests (messages plus
    /// requests, every kernel tick).
    pub prefilter_probes: u64,
    /// Kernel launches skipped entirely because screening emptied one
    /// side of the batch.
    pub prefilter_skipped_launches: u64,
    /// Duplicate wildcard probes served by scan-ballot reuse inside the
    /// matrix engine (see `GpuMatchReport::probe_dedups`).
    pub probe_dedups: u64,
    /// Duplicate transport sequences dropped by this endpoint's reorder
    /// stage (only populated when the domain restores order in user
    /// space over an unordered transport).
    pub reorder_duplicates: u64,
    /// High-water mark of the reorder stash (how far ahead the wire ran).
    pub reorder_high_water: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_ordering() {
        assert!(RecvHandle(1) < RecvHandle(2));
    }

    #[test]
    fn message_carries_payload() {
        let m = Message {
            envelope: Envelope::new(1, 2, 0),
            payload: Bytes::from_static(b"hello"),
            flow: None,
        };
        assert_eq!(&m.payload[..], b"hello");
    }
}
