//! Bulk-synchronous-parallel driving helpers.
//!
//! The paper argues the relaxations are feasible because "scientific
//! applications on GPUs are generally well structured and strictly follow
//! the BSP model" — tags can be reused after synchronisation, receives
//! can be pre-posted, and ordering can be restored at user level. This
//! module packages that discipline: a [`BspProgram`] runs supersteps in
//! which every rank (on its own thread) exchanges messages and then meets
//! a barrier; the domain must be quiescent at each boundary, which is
//! precisely the property that makes tag reuse sound under the
//! no-ordering relaxation.

use crossbeam::thread;

use crate::domain::Domain;

/// Runs rank closures in supersteps over a shared [`Domain`].
pub struct BspProgram<'d> {
    domain: &'d Domain,
}

impl<'d> BspProgram<'d> {
    /// Wrap a domain for BSP execution.
    pub fn new(domain: &'d Domain) -> Self {
        BspProgram { domain }
    }

    /// Execute one superstep: `body(rank, domain)` runs concurrently for
    /// every rank; the call returns when all ranks finish. Verifies the
    /// BSP contract that no unmatched traffic crosses the barrier.
    ///
    /// # Errors
    /// Returns an error if a rank body fails or traffic is left in
    /// flight at the barrier.
    pub fn superstep<F>(&self, body: F) -> Result<(), String>
    where
        F: Fn(u32, &Domain) -> Result<(), String> + Sync,
    {
        let n = self.domain.ranks();
        let results: Vec<Result<(), String>> = thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let body = &body;
                    let d = self.domain;
                    s.spawn(move |_| body(r, d))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("rank panicked".into())))
                .collect()
        })
        .map_err(|_| "superstep thread pool failed".to_string())?;
        for (r, res) in results.into_iter().enumerate() {
            res.map_err(|e| format!("rank {r}: {e}"))?;
        }
        if !self.domain.quiescent() {
            return Err("superstep barrier reached with traffic still in flight".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, MatcherKind};
    use bytes::Bytes;
    use msg_match::{RecvRequest, RelaxationConfig};
    use simt_sim::GpuGeneration;

    #[test]
    fn supersteps_allow_tag_reuse_without_ordering() {
        let d = Domain::new(
            4,
            GpuGeneration::PascalGtx1080,
            MatcherKind::Hash,
            RelaxationConfig::UNORDERED,
        );
        let bsp = BspProgram::new(&d);
        // The same tag is reused in every superstep — sound because the
        // barrier guarantees the previous phase fully drained.
        for step in 0..3u8 {
            bsp.superstep(|rank, d| {
                let n = d.ranks();
                let next = (rank + 1) % n;
                let prev = (rank + n - 1) % n;
                d.send(rank, next, rank, 0, Bytes::from(vec![step, rank as u8]));
                let m = d.recv_blocking(rank, RecvRequest::exact(prev, prev, 0), 64)?;
                if m.payload[0] != step || m.payload[1] != prev as u8 {
                    return Err("wrong payload".into());
                }
                Ok(())
            })
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn barrier_detects_leftover_traffic() {
        let d = Domain::full_mpi(2, GpuGeneration::PascalGtx1080);
        let bsp = BspProgram::new(&d);
        let err = bsp
            .superstep(|rank, d| {
                if rank == 0 {
                    // Send with no matching receive anywhere.
                    d.send(0, 1, 9, 0, Bytes::new());
                }
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("in flight"), "{err}");
    }
}
