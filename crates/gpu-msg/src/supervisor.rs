//! Health supervision and graceful degradation for the sharded service.
//!
//! The supervisor runs on the simulated clock: every
//! [`health_check_interval`](SupervisorConfig::health_check_interval)
//! it observes each shard's responsiveness and queue depth. A shard
//! that stays unresponsive past
//! [`failover_after`](SupervisorConfig::failover_after) — or that
//! crash-loops — has its key range rerouted to the healthiest peer via
//! [`msg_match::ShardPlacement::redirect`]; routes are handed back once
//! the home shard is up and the peer has drained the inherited work.
//! Under sustained overload the supervisor flips a shard into shedding
//! mode: admitted arrivals older than
//! [`shed_deadline`](SupervisorConfig::shed_deadline) are dropped
//! oldest-first (counted as `shed`, distinct from admission `spilled`).

/// Supervisor policy knobs, times in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Cadence of health/overload observations.
    pub health_check_interval: f64,
    /// Unresponsive this long → fail the shard's keys over to a peer.
    pub failover_after: f64,
    /// This many crashes observed on one shard → treat it as
    /// crash-looping and fail over immediately at the next check.
    pub crash_loop_threshold: u64,
    /// In shedding mode, queued arrivals older than this are dropped
    /// oldest-first at the next dispatch opportunity.
    pub shed_deadline: f64,
    /// Queue depth (as a fraction of capacity) that counts as an
    /// overload observation.
    pub overload_depth: f64,
    /// Consecutive overload observations before shedding engages (and
    /// below which it disengages).
    pub overload_checks: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            health_check_interval: 50e-6,
            failover_after: 150e-6,
            crash_loop_threshold: 3,
            shed_deadline: 400e-6,
            overload_depth: 0.9,
            overload_checks: 3,
        }
    }
}

/// Per-shard supervisor bookkeeping between health checks.
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    /// When each shard was first observed unresponsive (None = up).
    down_since: Vec<Option<f64>>,
    /// When each shard was first observed *unreachable* — partitioned
    /// off, state intact — as distinct from unresponsive (None =
    /// reachable). Tracked separately so a partition never feeds
    /// crash-loop detection: the shard is healthy, the path is not.
    unreachable_since: Vec<Option<f64>>,
    /// Crashes observed per shard over the run.
    crash_counts: Vec<u64>,
    /// Partition episodes observed per shard over the run.
    partition_counts: Vec<u64>,
    /// Consecutive overload observations per shard.
    overload_streak: Vec<u32>,
    /// Whether deadline shedding is engaged per shard.
    shedding: Vec<bool>,
}

impl Supervisor {
    /// A supervisor over `shards` shards with policy `cfg`.
    pub fn new(shards: usize, cfg: SupervisorConfig) -> Self {
        Supervisor {
            cfg,
            down_since: vec![None; shards],
            unreachable_since: vec![None; shards],
            crash_counts: vec![0; shards],
            partition_counts: vec![0; shards],
            overload_streak: vec![0; shards],
            shedding: vec![false; shards],
        }
    }

    /// The policy this supervisor enforces.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }

    /// Record an injected crash on `shard` (feeds crash-loop detection).
    pub fn note_crash(&mut self, shard: usize) {
        self.crash_counts[shard] += 1;
    }

    /// Health check: `shard` observed unresponsive at `now`. Returns
    /// true when the outage has lasted long enough — or the shard is
    /// crash-looping — that its keys should fail over.
    pub fn note_down(&mut self, shard: usize, now: f64) -> bool {
        let since = *self.down_since[shard].get_or_insert(now);
        now - since >= self.cfg.failover_after || self.crash_looping(shard)
    }

    /// Health check: `shard` observed responsive again.
    pub fn note_up(&mut self, shard: usize) {
        self.down_since[shard] = None;
    }

    /// Health check: `shard` observed *unreachable* (partitioned) at
    /// `now`. Unlike [`Self::note_down`], this never consults crash-loop
    /// state — the shard is fine, the path is cut — but the same grace
    /// period applies before its keys fail over. Returns true when the
    /// partition has lasted long enough to fail over.
    pub fn note_unreachable(&mut self, shard: usize, now: f64) -> bool {
        if self.unreachable_since[shard].is_none() {
            self.partition_counts[shard] += 1;
        }
        let since = *self.unreachable_since[shard].get_or_insert(now);
        now - since >= self.cfg.failover_after
    }

    /// Health check: `shard` observed reachable again (partition
    /// healed).
    pub fn note_reachable(&mut self, shard: usize) {
        self.unreachable_since[shard] = None;
    }

    /// Is `shard` currently marked unreachable?
    pub fn is_unreachable(&self, shard: usize) -> bool {
        self.unreachable_since[shard].is_some()
    }

    /// Partition episodes observed on `shard` so far.
    pub fn partition_count(&self, shard: usize) -> u64 {
        self.partition_counts[shard]
    }

    /// Has `shard` crashed often enough to count as crash-looping?
    pub fn crash_looping(&self, shard: usize) -> bool {
        self.crash_counts[shard] >= self.cfg.crash_loop_threshold
    }

    /// Crashes observed on `shard` so far.
    pub fn crash_count(&self, shard: usize) -> u64 {
        self.crash_counts[shard]
    }

    /// Overload check: `shard`'s queue holds `depth` of `capacity`
    /// slots. Engages shedding after
    /// [`overload_checks`](SupervisorConfig::overload_checks)
    /// consecutive overloaded observations; one healthy observation
    /// disengages it. Returns the shedding state.
    pub fn observe_depth(&mut self, shard: usize, depth: usize, capacity: usize) -> bool {
        let overloaded = depth as f64 >= self.cfg.overload_depth * capacity.max(1) as f64;
        if overloaded {
            self.overload_streak[shard] = self.overload_streak[shard].saturating_add(1);
            if self.overload_streak[shard] >= self.cfg.overload_checks {
                self.shedding[shard] = true;
            }
        } else {
            self.overload_streak[shard] = 0;
            self.shedding[shard] = false;
        }
        self.shedding[shard]
    }

    /// Is deadline shedding currently engaged on `shard`?
    pub fn is_shedding(&self, shard: usize) -> bool {
        self.shedding[shard]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_fires_only_after_the_grace_period() {
        let cfg = SupervisorConfig::default();
        let mut s = Supervisor::new(2, cfg);
        assert!(!s.note_down(0, 1e-4), "first observation starts the clock");
        assert!(!s.note_down(0, 1e-4 + cfg.failover_after * 0.5));
        assert!(s.note_down(0, 1e-4 + cfg.failover_after));
        s.note_up(0);
        assert!(!s.note_down(0, 2e-3), "recovering resets the outage clock");
    }

    #[test]
    fn crash_looping_shortcuts_the_grace_period() {
        let mut s = Supervisor::new(1, SupervisorConfig::default());
        for _ in 0..3 {
            s.note_crash(0);
        }
        assert!(s.crash_looping(0));
        assert!(s.note_down(0, 1e-6), "crash-looping fails over immediately");
    }

    #[test]
    fn unreachable_is_tracked_apart_from_crashes() {
        let cfg = SupervisorConfig::default();
        let mut s = Supervisor::new(2, cfg);
        // Crash-looping shortcut must NOT apply to partitions: the
        // shard is healthy, only the path is cut.
        for _ in 0..5 {
            s.note_crash(0);
        }
        assert!(!s.note_unreachable(0, 1e-6), "grace period still applies");
        assert!(s.is_unreachable(0));
        assert_eq!(s.partition_count(0), 1);
        assert!(
            s.note_unreachable(0, 1e-6 + cfg.failover_after),
            "sustained partition fails over"
        );
        assert_eq!(s.partition_count(0), 1, "one episode, not per check");
        s.note_reachable(0);
        assert!(!s.is_unreachable(0));
        assert!(!s.note_unreachable(0, 1.0), "heal resets the clock");
        assert_eq!(s.partition_count(0), 2, "a new episode counts again");
        assert_eq!(s.partition_count(1), 0);
    }

    #[test]
    fn shedding_needs_a_streak_and_clears_on_recovery() {
        let cfg = SupervisorConfig {
            overload_checks: 3,
            ..Default::default()
        };
        let mut s = Supervisor::new(1, cfg);
        assert!(!s.observe_depth(0, 95, 100));
        assert!(!s.observe_depth(0, 96, 100));
        assert!(s.observe_depth(0, 97, 100), "third strike engages");
        assert!(s.is_shedding(0));
        assert!(!s.observe_depth(0, 10, 100), "one healthy check disengages");
        assert!(!s.is_shedding(0));
    }
}
