//! User-level ordering restoration for unordered domains.
//!
//! Under the no-ordering relaxation the runtime may deliver messages from
//! the same source in any order; the paper notes "tags can be used to
//! restore ordering at the user level". [`ReorderBuffer`] packages that
//! discipline: senders stamp a per-destination sequence number into the
//! tag (or a payload header), receivers push completions as they arrive
//! and pop them in sequence — exactly a transport-layer reorder window.

use std::collections::{BTreeMap, HashMap};

use crate::message::Message;

/// Restores per-source delivery order from sequence-stamped messages.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    /// Per source: next sequence expected, and the out-of-order stash.
    streams: HashMap<u32, (u64, BTreeMap<u64, Message>)>,
    /// Total messages buffered right now.
    buffered: usize,
    /// High-water mark of the stash (how far ahead delivery ran).
    pub max_buffered: usize,
    /// Duplicate or replayed sequences dropped instead of delivered.
    pub duplicates: u64,
}

impl ReorderBuffer {
    /// Empty buffer; every source starts expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a delivered message carrying sequence `seq` from its source.
    /// Returns every message that is now in order (possibly empty if
    /// `seq` arrived early; possibly several if it filled a gap).
    ///
    /// A duplicate or replayed sequence — one already released or
    /// already stashed, as an at-least-once transport can legitimately
    /// present — is dropped (never delivered twice, never corrupting the
    /// stash accounting) and counted in [`Self::duplicates`].
    pub fn push(&mut self, seq: u64, message: Message) -> Vec<Message> {
        let src = message.envelope.src;
        let (next, stash) = self.streams.entry(src).or_insert((0, BTreeMap::new()));
        if seq < *next || stash.contains_key(&seq) {
            self.duplicates += 1;
            return Vec::new();
        }
        stash.insert(seq, message);
        self.buffered += 1;
        self.max_buffered = self.max_buffered.max(self.buffered);

        let mut ready = Vec::new();
        while let Some(m) = stash.remove(next) {
            ready.push(m);
            *next += 1;
            self.buffered -= 1;
        }
        ready
    }

    /// Messages currently held out of order.
    pub fn pending(&self) -> usize {
        self.buffered
    }

    /// True if no gaps are outstanding.
    pub fn is_drained(&self) -> bool {
        self.buffered == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use msg_match::Envelope;

    fn msg(src: u32, seq: u64) -> Message {
        Message {
            flow: None,
            envelope: Envelope::new(src, (seq % 1000) as u32, 0),
            payload: Bytes::from(seq.to_le_bytes().to_vec()),
        }
    }

    #[test]
    fn in_order_passes_through() {
        let mut rb = ReorderBuffer::new();
        for seq in 0..5 {
            let out = rb.push(seq, msg(1, seq));
            assert_eq!(out.len(), 1);
        }
        assert!(rb.is_drained());
        assert_eq!(rb.max_buffered, 1);
    }

    #[test]
    fn gap_fills_release_in_order() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(2, msg(1, 2)).is_empty());
        assert!(rb.push(1, msg(1, 1)).is_empty());
        assert_eq!(rb.pending(), 2);
        let out = rb.push(0, msg(1, 0));
        assert_eq!(out.len(), 3);
        let seqs: Vec<u64> = out
            .iter()
            .map(|m| u64::from_le_bytes(m.payload[..8].try_into().unwrap()))
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert!(rb.is_drained());
        assert_eq!(rb.max_buffered, 3);
    }

    #[test]
    fn sources_are_independent() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(1, msg(7, 1)).is_empty(), "src 7 waits for seq 0");
        assert_eq!(rb.push(0, msg(9, 0)).len(), 1, "src 9 is unaffected");
        assert_eq!(rb.push(0, msg(7, 0)).len(), 2);
    }

    #[test]
    fn replayed_sequence_is_dropped_not_redelivered() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.push(0, msg(1, 0)).len(), 1, "first copy delivers");
        assert!(rb.push(0, msg(1, 0)).is_empty(), "replay must not deliver");
        assert_eq!(rb.duplicates, 1);
        assert!(rb.is_drained(), "replay must not inflate the stash count");
        // The stream still advances normally afterwards.
        assert_eq!(rb.push(1, msg(1, 1)).len(), 1);
    }

    #[test]
    fn duplicate_of_stashed_sequence_is_dropped() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(2, msg(1, 2)).is_empty(), "seq 2 stashes");
        assert!(rb.push(2, msg(1, 2)).is_empty(), "second copy of seq 2");
        assert_eq!(rb.duplicates, 1);
        assert_eq!(rb.pending(), 1, "the stash holds exactly one copy");
        assert!(rb.push(1, msg(1, 1)).is_empty());
        let out = rb.push(0, msg(1, 0));
        assert_eq!(out.len(), 3, "gap fill releases each sequence once");
        assert!(rb.is_drained());
    }

    #[test]
    fn full_permutation_restores_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seqs: Vec<u64> = (0..200).collect();
        seqs.shuffle(&mut rng);
        let mut rb = ReorderBuffer::new();
        let mut delivered = Vec::new();
        for &seq in &seqs {
            delivered.extend(
                rb.push(seq, msg(0, seq))
                    .into_iter()
                    .map(|m| u64::from_le_bytes(m.payload[..8].try_into().unwrap())),
            );
        }
        assert_eq!(delivered, (0..200).collect::<Vec<u64>>());
        assert!(rb.is_drained());
    }
}
