//! Pluggable wire between a domain's endpoints.
//!
//! The original runtime modelled a send as an instantaneous in-order
//! remote write — the ideal GAS store of the paper's Section II-C. A
//! [`Transport`] makes that wire a replaceable component:
//!
//! * [`DirectTransport`] keeps the ideal semantics (and zero overhead):
//!   submitted messages are deliverable immediately, in submission
//!   order.
//! * [`FabricTransport`] routes every remote send through a
//!   [`fabric::Fabric`] — packetization, eager/rendezvous protocol
//!   selection, credit-based flow control, fault injection and
//!   selective-repeat recovery, all on a simulated clock that advances
//!   as the domain makes progress.
//!
//! Both stamp each `(src, dst)` channel's messages with a dense
//! `msg_seq`, so a user-level [`crate::ReorderBuffer`] can restore order
//! when the transport itself does not.

use std::collections::HashMap;

use bytes::Bytes;
use fabric::{Fabric, FabricConfig, FabricStats, LinkEvent};
use msg_match::Envelope;

use crate::message::Message;

/// Which wire a [`crate::Domain`] runs over.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransportConfig {
    /// Instantaneous in-order delivery (the legacy behaviour).
    #[default]
    Direct,
    /// A simulated interconnect with the given parameters.
    Fabric(FabricConfig),
}

/// A message the transport has carried to its destination.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportDelivery {
    /// Destination endpoint.
    pub dst: u32,
    /// Dense per-`(src, dst)` message index (the source is in the
    /// envelope).
    pub msg_seq: u64,
    /// True when an at-least-once wire re-delivered an already-delivered
    /// message.
    pub duplicate: bool,
    /// Causal flow id echoed back from [`Transport::submit_flow`], when
    /// the sender sampled this message for flow tracing.
    pub flow: Option<u64>,
    /// The message itself.
    pub message: Message,
}

/// The wire between endpoints. Implementations own all in-flight state;
/// the domain submits on send and pumps during progress.
pub trait Transport: Send {
    /// Accept a message for delivery. `src == dst` is a local write and
    /// must always succeed without touching the wire.
    fn submit(&mut self, src: u32, dst: u32, envelope: Envelope, payload: Bytes);

    /// Like [`Transport::submit`], but carrying an optional causal flow
    /// id that the delivery echoes back ([`TransportDelivery::flow`]).
    /// The default drops the id; delivery order and content never depend
    /// on it.
    fn submit_flow(
        &mut self,
        src: u32,
        dst: u32,
        envelope: Envelope,
        payload: Bytes,
        flow: Option<u64>,
    ) {
        let _ = flow;
        self.submit(src, dst, envelope, payload);
    }

    /// Collect every message that has reached its destination. With
    /// `advance`, a time-based transport first moves its simulated clock
    /// forward one progress quantum.
    fn pump(&mut self, advance: bool) -> Vec<TransportDelivery>;

    /// True when nothing is in flight or undelivered inside the
    /// transport.
    fn quiescent(&self) -> bool;

    /// Surface unrecoverable transport failures (e.g. a packet that
    /// exhausted its retransmission budget).
    ///
    /// # Errors
    /// A description of the failed transfers.
    fn check(&self) -> Result<(), String>;

    /// Short label for reports.
    fn name(&self) -> &'static str;

    /// Simulated wire time in nanoseconds, used to timestamp flow trace
    /// points. The instantaneous direct wire has no clock (always 0).
    fn now_ns(&self) -> u64 {
        0
    }

    /// Fabric counters, when the wire is a fabric.
    fn fabric_stats(&self) -> Option<FabricStats> {
        None
    }

    /// Drain structured link lifecycle notices (down episodes that
    /// stranded traffic, and their heals) raised since the last call.
    /// Wires without link faults return nothing. These are
    /// *notifications*, not errors: the transport keeps repairing
    /// parked traffic across a heal on its own.
    fn take_link_events(&mut self) -> Vec<LinkEvent> {
        Vec::new()
    }

    /// Per-link trace JSON, when the wire is a traced fabric.
    fn trace_json(&self) -> Option<String> {
        None
    }
}

/// Instantaneous, in-order, lossless delivery — the ideal GAS remote
/// write the runtime originally modelled.
#[derive(Debug, Default)]
pub struct DirectTransport {
    seqs: HashMap<(u32, u32), u64>,
    ready: Vec<TransportDelivery>,
}

impl DirectTransport {
    /// A fresh direct wire.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for DirectTransport {
    fn submit(&mut self, src: u32, dst: u32, envelope: Envelope, payload: Bytes) {
        self.submit_flow(src, dst, envelope, payload, None);
    }

    fn submit_flow(
        &mut self,
        src: u32,
        dst: u32,
        envelope: Envelope,
        payload: Bytes,
        flow: Option<u64>,
    ) {
        let seq = self.seqs.entry((src, dst)).or_insert(0);
        let msg_seq = *seq;
        *seq += 1;
        self.ready.push(TransportDelivery {
            dst,
            msg_seq,
            duplicate: false,
            flow,
            message: Message {
                envelope,
                payload,
                flow,
            },
        });
    }

    fn pump(&mut self, _advance: bool) -> Vec<TransportDelivery> {
        std::mem::take(&mut self.ready)
    }

    fn quiescent(&self) -> bool {
        self.ready.is_empty()
    }

    fn check(&self) -> Result<(), String> {
        Ok(())
    }

    fn name(&self) -> &'static str {
        "direct"
    }
}

/// A wire that routes every remote send through a simulated fabric.
pub struct FabricTransport {
    net: Fabric,
    /// Simulated nanoseconds the fabric advances per progress pump.
    quantum_ns: u64,
    /// Message counters for `src == dst` local writes, which bypass the
    /// wire but still need dense sequence numbers on their channel.
    local_seqs: HashMap<u32, u64>,
    /// Local writes awaiting the next pump.
    local_ready: Vec<TransportDelivery>,
}

impl FabricTransport {
    /// Wrap a fabric of `ranks` endpoints. The progress quantum is
    /// derived from the configuration: long enough that a retransmission
    /// cycle completes within a few pumps, never shorter than one link
    /// traversal.
    pub fn new(ranks: u32, cfg: FabricConfig) -> Self {
        let quantum_ns = cfg
            .link_latency_ns
            .max(cfg.retransmit_timeout_ns / 2)
            .max(1);
        FabricTransport {
            net: Fabric::new(ranks, cfg),
            quantum_ns,
            local_seqs: HashMap::new(),
            local_ready: Vec::new(),
        }
    }

    /// The wrapped fabric (e.g. for inspecting link traces).
    pub fn fabric(&self) -> &Fabric {
        &self.net
    }
}

impl Transport for FabricTransport {
    fn submit(&mut self, src: u32, dst: u32, envelope: Envelope, payload: Bytes) {
        self.submit_flow(src, dst, envelope, payload, None);
    }

    fn submit_flow(
        &mut self,
        src: u32,
        dst: u32,
        envelope: Envelope,
        payload: Bytes,
        flow: Option<u64>,
    ) {
        if src == dst {
            let seq = self.local_seqs.entry(src).or_insert(0);
            let msg_seq = *seq;
            *seq += 1;
            self.local_ready.push(TransportDelivery {
                dst,
                msg_seq,
                duplicate: false,
                flow,
                message: Message {
                    envelope,
                    payload,
                    flow,
                },
            });
            return;
        }
        self.net.send_flow(src, dst, envelope, payload, flow);
    }

    fn pump(&mut self, advance: bool) -> Vec<TransportDelivery> {
        if advance {
            self.net.advance(self.quantum_ns);
        }
        let mut out = std::mem::take(&mut self.local_ready);
        for dst in 0..self.net.ranks() {
            for d in self.net.take_deliveries(dst) {
                out.push(TransportDelivery {
                    dst,
                    msg_seq: d.msg_seq,
                    duplicate: d.duplicate,
                    flow: d.flow,
                    message: Message {
                        envelope: d.envelope,
                        payload: d.payload,
                        flow: d.flow,
                    },
                });
            }
        }
        out
    }

    fn quiescent(&self) -> bool {
        self.local_ready.is_empty() && self.net.quiescent()
    }

    fn check(&self) -> Result<(), String> {
        let dead = self.net.errors();
        if dead.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "fabric lost {} transfer(s) permanently: {}",
                dead.len(),
                dead.join("; ")
            ))
        }
    }

    fn name(&self) -> &'static str {
        "fabric"
    }

    fn now_ns(&self) -> u64 {
        self.net.now_ns()
    }

    fn fabric_stats(&self) -> Option<FabricStats> {
        Some(self.net.stats())
    }

    fn take_link_events(&mut self) -> Vec<LinkEvent> {
        self.net.take_link_events()
    }

    fn trace_json(&self) -> Option<String> {
        self.net.trace_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit_n(t: &mut dyn Transport, n: u32) {
        for i in 0..n {
            t.submit(0, 1, Envelope::new(0, i, 0), Bytes::from(vec![i as u8]));
        }
    }

    #[test]
    fn direct_delivers_immediately_in_order() {
        let mut t = DirectTransport::new();
        submit_n(&mut t, 4);
        let got = t.pump(false);
        assert_eq!(got.len(), 4);
        let seqs: Vec<u64> = got.iter().map(|d| d.msg_seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(t.quiescent());
        t.check().unwrap();
    }

    #[test]
    fn fabric_needs_time_to_deliver() {
        let mut t = FabricTransport::new(2, FabricConfig::default());
        submit_n(&mut t, 3);
        assert!(t.pump(false).is_empty(), "nothing lands at t=0");
        assert!(!t.quiescent());
        let mut got = Vec::new();
        for _ in 0..64 {
            got.extend(t.pump(true));
            if got.len() == 3 {
                break;
            }
        }
        assert_eq!(got.len(), 3);
        assert!(t.quiescent());
        assert!(t.fabric_stats().unwrap().packets_sent > 0);
    }

    #[test]
    fn fabric_local_write_bypasses_the_wire() {
        let mut t = FabricTransport::new(2, FabricConfig::default());
        t.submit(1, 1, Envelope::new(1, 9, 0), Bytes::from_static(b"self"));
        let got = t.pump(false);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst, 1);
        assert_eq!(got[0].msg_seq, 0);
        assert_eq!(t.fabric_stats().unwrap().messages_sent, 0);
    }
}
