//! Collective operations layered on the send/recv runtime.
//!
//! The paper closes by asking which paradigm — "send/recv, collectives,
//! put/get, (partitioned) global address spaces" — suits GPU-resident
//! communication best. This module provides the classic collectives
//! *composed from* the matching runtime, so their cost inherits the
//! matching rates the paper measures: every collective step is a real
//! send matched by a real receive on the simulated device.
//!
//! All collectives are **tagged**: the caller reserves a tag namespace
//! (`tag_base`) so collective traffic cannot collide with point-to-point
//! traffic — mandatory under the no-ordering relaxation, where tags are
//! the only disambiguator.
//!
//! Each function is called by *every* rank (from its own thread), like
//! the MPI collectives they mirror.

use bytes::Bytes;
use msg_match::{RecvRequest, Tag};

use crate::domain::Domain;

/// Ring all-reduce (sum) of one `f64` per rank. Returns the global sum.
/// Costs `ranks − 1` steps of one send + one receive per rank.
///
/// # Errors
/// Propagates runtime errors (tag-space violations, stuck receives).
pub fn ring_allreduce_sum(
    domain: &Domain,
    rank: u32,
    value: f64,
    tag_base: Tag,
) -> Result<f64, String> {
    let n = domain.ranks();
    if n == 1 {
        return Ok(value);
    }
    let next = (rank + 1) % n;
    let prev = (rank + n - 1) % n;
    let mut acc = value;
    let mut carry = value;
    for step in 0..n - 1 {
        let tag = tag_base + step;
        domain.send(
            rank,
            next,
            tag,
            0,
            Bytes::from(carry.to_le_bytes().to_vec()),
        );
        let m = domain.recv_blocking(
            rank,
            RecvRequest::exact(prev, tag, 0),
            domain.progress_bound(),
        )?;
        carry = f64::from_le_bytes(m.payload[..8].try_into().expect("8 bytes"));
        acc += carry;
    }
    Ok(acc)
}

/// Binomial-tree broadcast of a payload from `root`. Every rank returns
/// the payload; non-roots receive it from their tree parent and forward
/// it down. Costs ⌈log₂ ranks⌉ rounds.
///
/// # Errors
/// Propagates runtime errors.
pub fn broadcast(
    domain: &Domain,
    rank: u32,
    root: u32,
    payload: Option<Bytes>,
    tag_base: Tag,
) -> Result<Bytes, String> {
    let n = domain.ranks();
    // Rotate so the root is virtual rank 0.
    let vrank = (rank + n - root) % n;
    let mut data = if vrank == 0 {
        payload.ok_or("root must supply the payload")?
    } else {
        // Receive from the parent: clear the lowest set bit of vrank.
        let parent_v = vrank & (vrank - 1);
        let parent = (parent_v + root) % n;
        // The tag encodes the receiver's virtual rank: unique tuples.
        let m = domain.recv_blocking(
            rank,
            RecvRequest::exact(parent, tag_base + vrank, 0),
            domain.progress_bound(),
        )?;
        m.payload
    };
    // Forward to children: set bits above the lowest set bit of vrank.
    let lowbit = if vrank == 0 {
        n.next_power_of_two()
    } else {
        vrank & vrank.wrapping_neg()
    };
    let mut bit = 1u32;
    while bit < lowbit && bit < n.next_power_of_two() {
        let child_v = vrank | bit;
        if child_v != vrank && child_v < n {
            let child = (child_v + root) % n;
            domain.send(rank, child, tag_base + child_v, 0, data.clone());
        }
        bit <<= 1;
    }
    // `data` is shared (Bytes is cheaply cloneable); return it.
    let out = data.clone();
    data.clear();
    Ok(out)
}

/// Dissemination barrier: ⌈log₂ ranks⌉ rounds of paired notifications.
/// Returns once every rank has entered the barrier.
///
/// # Errors
/// Propagates runtime errors.
pub fn barrier(domain: &Domain, rank: u32, tag_base: Tag) -> Result<(), String> {
    let n = domain.ranks();
    let mut round = 0u32;
    let mut dist = 1u32;
    while dist < n {
        let to = (rank + dist) % n;
        let from = (rank + n - dist) % n;
        domain.send(rank, to, tag_base + round, 0, Bytes::new());
        domain.recv_blocking(
            rank,
            RecvRequest::exact(from, tag_base + round, 0),
            domain.progress_bound(),
        )?;
        dist <<= 1;
        round += 1;
    }
    Ok(())
}

/// All-gather of one `u64` per rank via the ring algorithm. Returns the
/// vector indexed by rank.
///
/// # Errors
/// Propagates runtime errors.
pub fn ring_allgather_u64(
    domain: &Domain,
    rank: u32,
    value: u64,
    tag_base: Tag,
) -> Result<Vec<u64>, String> {
    let n = domain.ranks();
    let mut out = vec![0u64; n as usize];
    out[rank as usize] = value;
    if n == 1 {
        return Ok(out);
    }
    let next = (rank + 1) % n;
    let prev = (rank + n - 1) % n;
    let mut carry_idx = rank;
    for step in 0..n - 1 {
        let tag = tag_base + step;
        let carry = out[carry_idx as usize];
        domain.send(
            rank,
            next,
            tag,
            0,
            Bytes::from(carry.to_le_bytes().to_vec()),
        );
        let m = domain.recv_blocking(
            rank,
            RecvRequest::exact(prev, tag, 0),
            domain.progress_bound(),
        )?;
        carry_idx = (carry_idx + n - 1) % n;
        out[carry_idx as usize] = u64::from_le_bytes(m.payload[..8].try_into().expect("8 bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::MatcherKind;
    use msg_match::RelaxationConfig;
    use simt_sim::GpuGeneration;

    fn run_all<F>(domain: &Domain, f: F)
    where
        F: Fn(u32, &Domain) + Sync,
    {
        crossbeam::scope(|s| {
            for r in 0..domain.ranks() {
                let f = &f;
                s.spawn(move |_| f(r, domain));
            }
        })
        .expect("join");
    }

    #[test]
    fn allreduce_sums_across_matchers() {
        for (kind, relax) in [
            (MatcherKind::Matrix, RelaxationConfig::FULL_MPI),
            (MatcherKind::Hash, RelaxationConfig::UNORDERED),
        ] {
            let d = Domain::new(5, GpuGeneration::PascalGtx1080, kind, relax);
            run_all(&d, |rank, d| {
                let got = ring_allreduce_sum(d, rank, (rank + 1) as f64, 1000).unwrap();
                assert_eq!(got, 15.0, "{kind:?} rank {rank}");
            });
            assert!(d.quiescent());
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        let d = Domain::full_mpi(6, GpuGeneration::PascalGtx1080);
        for root in [0u32, 2, 5] {
            run_all(&d, |rank, d| {
                let payload = if rank == root {
                    Some(Bytes::from(vec![root as u8; 9]))
                } else {
                    None
                };
                let got = broadcast(d, rank, root, payload, 2000).unwrap();
                assert_eq!(
                    &got[..],
                    &vec![root as u8; 9][..],
                    "root {root} rank {rank}"
                );
            });
            assert!(d.quiescent(), "root {root}");
        }
    }

    #[test]
    fn barrier_completes_on_non_power_of_two() {
        let d = Domain::full_mpi(7, GpuGeneration::MaxwellM40);
        run_all(&d, |rank, d| {
            for round in 0..3u32 {
                barrier(d, rank, 3000 + round * 16).unwrap();
            }
        });
        assert!(d.quiescent());
    }

    #[test]
    fn allgather_collects_everyone() {
        let d = Domain::full_mpi(4, GpuGeneration::PascalGtx1080);
        run_all(&d, |rank, d| {
            let got = ring_allgather_u64(d, rank, 100 + rank as u64, 4000).unwrap();
            assert_eq!(got, vec![100, 101, 102, 103], "rank {rank}");
        });
    }

    #[test]
    fn single_rank_collectives_are_trivial() {
        let d = Domain::full_mpi(1, GpuGeneration::KeplerK80);
        assert_eq!(ring_allreduce_sum(&d, 0, 7.0, 0).unwrap(), 7.0);
        assert_eq!(ring_allgather_u64(&d, 0, 9, 0).unwrap(), vec![9]);
        barrier(&d, 0, 0).unwrap();
    }
}
