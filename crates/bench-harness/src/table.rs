//! Minimal aligned-table and CSV rendering for experiment reports.

/// A rectangular report: header plus rows, printable as an aligned text
/// table or CSV.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// New empty report with a title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish; cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let esc = |c: &String| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a matches/s rate in the figure's unit (millions).
pub fn fmt_mps(rate: f64) -> String {
    format!("{:.2}", rate / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_csv() {
        let mut r = Report::new("t", &["a", "bb"]);
        r.push(vec!["1".into(), "22".into()]);
        r.push(vec!["333".into(), "4".into()]);
        let text = r.to_text();
        assert!(text.contains("== t =="));
        assert!(text.contains("333"));
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "a,bb");
    }

    #[test]
    fn csv_quoting() {
        let mut r = Report::new("t", &["x"]);
        r.push(vec!["a,b".into()]);
        assert!(r.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut r = Report::new("t", &["x", "y"]);
        r.push(vec!["only-one".into()]);
    }
}
