//! # bench-harness — regenerates every table and figure of the paper
//!
//! Each experiment is a library module under [`experiments`] (so tests
//! can assert the shapes) with a thin binary wrapper:
//!
//! ```text
//! cargo run --release -p bench-harness --bin table1
//! cargo run --release -p bench-harness --bin figure2
//! cargo run --release -p bench-harness --bin figure4
//! cargo run --release -p bench-harness --bin figure5
//! cargo run --release -p bench-harness --bin figure6a
//! cargo run --release -p bench-harness --bin figure6b
//! cargo run --release -p bench-harness --bin table2
//! cargo run --release -p bench-harness --bin cpu_baseline
//! cargo run --release -p bench-harness --bin unexpected
//! cargo run --release -p bench-harness --bin fabric_scaling   # BENCH_fabric.json
//! cargo run --release -p bench-harness --bin all    # everything + CSVs
//! ```
//!
//! Criterion benches (`cargo bench -p bench-harness`) measure the
//! *native* performance of the engines and of the simulator itself;
//! the paper's matches/s figures come from simulated device time and are
//! printed by the binaries above.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Report;
