//! Cross-layer chaos sweep: crashes, hangs, slow windows, partitions
//! and checkpoint corruption on the resharding service, composed with
//! per-packet faults and link flaps/partitions on the simulated wire.
//! Prints the sweep table and writes `BENCH_chaos.json`; exits non-zero
//! if any end-to-end invariant (exactly-once, per-pair FIFO,
//! guaranteed-class zero-loss, wire transparency) was violated. Pass
//! `--smoke` for the reduced CI sweep.
use bench_harness::experiments::chaos;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        chaos::SweepConfig::smoke()
    } else {
        chaos::SweepConfig::full()
    };
    let r = chaos::run(&cfg);
    print!("{}", chaos::report(&r).to_text());
    match std::fs::write("BENCH_chaos.json", chaos::to_json(&r)) {
        Ok(()) => println!("wrote BENCH_chaos.json"),
        Err(e) => eprintln!("could not write BENCH_chaos.json: {e}"),
    }
    if r.total_violations > 0 {
        eprintln!(
            "chaos sweep violated {} end-to-end invariant(s)",
            r.total_violations
        );
        std::process::exit(1);
    }
}
