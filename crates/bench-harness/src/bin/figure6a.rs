//! Regenerates Figure 6(a) (tuple uniqueness per application).
use bench_harness::experiments::traces;

fn main() {
    let analyses = traces::analyze_all(1.0, 0xD0E);
    print!("{}", traces::figure6a(&analyses).to_text());
}
