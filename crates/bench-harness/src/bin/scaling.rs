//! Rank-0 hotspot scaling study (related work: Keller et al.).
use bench_harness::experiments::scaling;

fn main() {
    let pts = scaling::run(&scaling::DEFAULT_RANKS, 8, 7);
    print!("{}", scaling::report(&pts).to_text());
}
