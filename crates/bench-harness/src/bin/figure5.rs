//! Regenerates Figure 5 (rank-partitioned sweep + generation speedups).
use bench_harness::experiments::figure5;
use simt_sim::GpuGeneration;

fn main() {
    let pts = figure5::run(&figure5::DEFAULT_QUEUES, &figure5::DEFAULT_LENS, 7);
    print!("{}", figure5::report(&pts).to_text());

    // The paper's cross-generation claim for this experiment.
    let q = [4usize, 16];
    let l = [1024usize];
    let p = figure5::run_generation(GpuGeneration::PascalGtx1080, &q, &l, 7);
    let k = figure5::run_generation(GpuGeneration::KeplerK80, &q, &l, 7);
    let m = figure5::run_generation(GpuGeneration::MaxwellM40, &q, &l, 7);
    println!();
    println!(
        "GTX1080 speedup: {:.2}x over K80 (paper: 2.12x), {:.2}x over M40 (paper: 1.56x)",
        figure5::mean_speedup(&p, &k),
        figure5::mean_speedup(&p, &m)
    );
}
