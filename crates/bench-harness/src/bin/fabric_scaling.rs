//! Fabric protocol sweep: eager threshold × loss rate × reorder skew.
//! Prints the sweep table, writes the full artefact to
//! `BENCH_fabric.json` and a traced tiny run to `FABRIC_trace.json`.
//! Pass `--smoke` for the reduced CI sweep.
use bench_harness::experiments::fabric_scaling;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        fabric_scaling::SweepConfig::smoke(5)
    } else {
        fabric_scaling::SweepConfig::full(5)
    };
    let r = fabric_scaling::run(&cfg);
    print!("{}", fabric_scaling::report(&r).to_text());
    for (path, contents) in [
        ("BENCH_fabric.json", fabric_scaling::to_json(&r)),
        (
            "FABRIC_trace.json",
            fabric_scaling::trace_artifact(cfg.seed),
        ),
    ] {
        match std::fs::write(path, &contents) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
