//! Regenerates Figure 6(b) (hash-table matching rate sweep).
use bench_harness::experiments::figure6b;
use simt_sim::GpuGeneration;

fn main() {
    let pts = figure6b::run(&figure6b::DEFAULT_LENS, &figure6b::DEFAULT_CTAS, 7);
    for gen in GpuGeneration::ALL {
        print!("{}", figure6b::report(&pts, gen).to_text());
        println!();
    }
}
