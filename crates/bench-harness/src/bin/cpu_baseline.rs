//! Native CPU list-matching baseline (Section II-C).
use bench_harness::experiments::cpu_baseline;

fn main() {
    let pts = cpu_baseline::run(&cpu_baseline::DEFAULT_LENS, 7);
    print!("{}", cpu_baseline::report(&pts).to_text());
}
