//! Sharded streaming service: sustained rate vs shard count × engine.
//! Prints the sweep table and writes the per-shard metrics snapshot of
//! the best configuration per engine to `BENCH_service.json`.
use bench_harness::experiments::shard_scaling;

fn main() {
    let pts = shard_scaling::run(
        &shard_scaling::DEFAULT_SHARDS,
        shard_scaling::DEFAULT_OFFERED,
        5,
    );
    print!("{}", shard_scaling::report(&pts).to_text());
    let json = shard_scaling::metrics_json(&pts);
    let path = "BENCH_service.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
