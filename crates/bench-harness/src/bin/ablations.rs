//! Runs the design-choice ablations (pipelining, window size, long-queue
//! order, hash-table design).
use bench_harness::experiments::ablations;

fn main() {
    print!(
        "{}",
        ablations::pipelining(&[128, 256, 512, 992], 3).to_text()
    );
    println!();
    print!(
        "{}",
        ablations::window_sweep(512, &[16, 32, 64, 128], 3).to_text()
    );
    println!();
    print!(
        "{}",
        ablations::long_queues(&[2048, 4096, 8192], 3).to_text()
    );
    println!();
    print!("{}", ablations::hash_design(1024, 3).to_text());
    println!();
    print!(
        "{}",
        bench_harness::experiments::saturation::threshold_ablation(
            2.0e6,
            &[32, 128, 256, 512, 1024],
            5
        )
        .to_text()
    );
}
