//! Regenerates Figure 2 (UMQ depth distributions) and its PRQ companion.
use bench_harness::experiments::traces;

fn main() {
    let analyses = traces::analyze_all(1.0, 0xD0E);
    print!("{}", traces::figure2(&analyses).to_text());
    println!();
    print!("{}", traces::figure2_prq(&analyses).to_text());
}
