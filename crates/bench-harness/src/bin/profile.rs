//! Architectural profile of the three engines (Section VII-C).
use bench_harness::experiments::profile;

fn main() {
    let profiles = profile::run(1024, 5);
    print!("{}", profile::report(&profiles).to_text());
    println!();
    print!("{}", profile::instruction_mix(1024, 5).to_text());
}
