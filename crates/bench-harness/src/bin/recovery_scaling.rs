//! Fault-tolerance sweep: crash rate x checkpoint interval against the
//! shard-scaling matrix configuration. Prints the sweep table, writes
//! the summary artefact to `BENCH_recovery.json` and a traced
//! single-crash run to `RECOVERY_trace.json`. Pass `--smoke` for the
//! reduced CI sweep (crash-free plus one faulty point).
use bench_harness::experiments::recovery_scaling;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (crash_rates, intervals): (&[f64], &[f64]) = if smoke {
        (&[0.0, 1500.0], &[250e-6])
    } else {
        (
            &recovery_scaling::DEFAULT_CRASH_RATES,
            &recovery_scaling::DEFAULT_CKPT_INTERVALS,
        )
    };
    let (baseline, points) = recovery_scaling::run(crash_rates, intervals, 5);
    print!("{}", recovery_scaling::report(&baseline, &points).to_text());
    let json = recovery_scaling::metrics_json(&baseline, &points);
    match std::fs::write("BENCH_recovery.json", &json) {
        Ok(()) => println!("wrote BENCH_recovery.json"),
        Err(e) => eprintln!("could not write BENCH_recovery.json: {e}"),
    }
    let trace = recovery_scaling::trace_json(5);
    match std::fs::write("RECOVERY_trace.json", &trace) {
        Ok(()) => println!("wrote RECOVERY_trace.json"),
        Err(e) => eprintln!("could not write RECOVERY_trace.json: {e}"),
    }
}
