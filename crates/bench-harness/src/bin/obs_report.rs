//! Observability report driver, three modes:
//!
//! * `obs_report [duration_seconds]` — traced service run plus five
//!   per-engine flow demos, exported as one merged Chrome trace
//!   (`OBS_trace.json`), the deterministic Prometheus exposition
//!   (`OBS_metrics.prom`), the wall-clock scheduler exposition
//!   (`OBS_wall.prom`) and a stall-attribution table on stdout.
//! * `obs_report --check [baseline_path]` — bench-regression gate:
//!   diffs `BENCH_service.json` / `BENCH_recovery.json` /
//!   `BENCH_tenancy.json` / `BENCH_chaos.json` in the current
//!   directory against the committed baseline
//!   (`docs/bench_baseline.json` by default); exits 1 on a >10%
//!   goodput or >20% barrier-stall regression, or on any violated
//!   invariant (guaranteed-tenant loss, live/static resharding
//!   divergence, scheduler divergence, chaos-sweep violations or a
//!   chaos sweep that stopped landing a fault class — no tolerance).
//! * `obs_report --overhead [duration_seconds]` — asserts flow tracing
//!   at the default 1-in-64 sampling costs under 5% of wall-clock
//!   matches/s against an untraced run (median of five interleaved
//!   pairs).
use bench_harness::experiments::obs_report;

/// Tolerated wall-clock slowdown for `--overhead`.
const OVERHEAD_TOLERANCE: f64 = 0.05;

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

fn read_json(path: &str) -> serde::Value {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
    serde::json::parse_value(&body)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")))
}

fn run_check(baseline_path: &str) {
    let baseline = read_json(baseline_path);
    let service = read_json("BENCH_service.json");
    let recovery = read_json("BENCH_recovery.json");
    let tenancy = read_json("BENCH_tenancy.json");
    let chaos = read_json("BENCH_chaos.json");
    match obs_report::check_regressions(&baseline, &service, &recovery, &tenancy, &chaos) {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench regression gate: OK (baseline {baseline_path})");
        }
        Ok(regressions) => {
            for r in &regressions {
                eprintln!("REGRESSION: {r}");
            }
            fail(&format!(
                "bench regression gate: {} regression(s) against {baseline_path}",
                regressions.len()
            ));
        }
        Err(e) => fail(&format!("bench regression gate could not run: {e}")),
    }
}

fn run_overhead(duration: f64) {
    let (traced, untraced) = obs_report::tracing_overhead(5, duration);
    let ratio = traced / untraced;
    println!(
        "tracing overhead: traced {traced:.0} matches/s, untraced {untraced:.0} matches/s \
         (ratio {ratio:.3})"
    );
    if traced < untraced * (1.0 - OVERHEAD_TOLERANCE) {
        fail(&format!(
            "flow tracing at 1-in-64 costs more than {:.0}% wall-clock matches/s",
            OVERHEAD_TOLERANCE * 100.0
        ));
    }
}

fn parse_duration(arg: Option<String>, default: f64) -> f64 {
    match arg {
        None => default,
        Some(s) => match s.parse::<f64>() {
            Ok(d) if d > 0.0 => d,
            _ => {
                eprintln!("usage: obs_report [duration_seconds | --check [baseline] | --overhead [duration_seconds]]");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next() {
        Some(a) if a == "--check" => {
            let baseline = args
                .next()
                .unwrap_or_else(|| "docs/bench_baseline.json".to_string());
            run_check(&baseline);
        }
        Some(a) if a == "--overhead" => {
            run_overhead(parse_duration(args.next(), 0.002));
        }
        first => {
            let mut cfg = obs_report::default_config();
            cfg.duration = parse_duration(first, cfg.duration);

            let artefacts = obs_report::run(cfg);
            let demos = obs_report::flow_demos(cfg.seed);
            let merged = obs_report::merged_trace(&artefacts, &demos);
            let events = match obs_report::trace_event_count(&merged) {
                Ok(0) => fail("exported trace holds no events"),
                Ok(n) => n,
                Err(e) => fail(&format!("exported trace failed validation: {e}")),
            };

            print!(
                "{}",
                obs_report::stall_table(&artefacts.report.metrics).to_text()
            );
            println!();
            let m = &artefacts.report.metrics;
            println!(
                "service: {} matched, {} spilled, sustained {:.2} M msgs/s over {} shards",
                m.total_matched,
                m.total_spilled,
                m.sustained_rate / 1e6,
                m.shards.len()
            );
            let prof = &artefacts.report.scheduler_profile;
            println!(
                "wall clock ({}): {:.1} ms, barrier-wait fraction {:.2}",
                prof.scheduler,
                prof.wall_seconds * 1e3,
                prof.barrier_wait_fraction()
            );
            for d in &demos {
                println!("flow demo: {}", d.label);
            }

            for (path, body) in [
                ("OBS_trace.json", &merged),
                ("OBS_metrics.prom", &artefacts.exposition),
                ("OBS_wall.prom", &artefacts.wall_prom),
            ] {
                match std::fs::write(path, body) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => fail(&format!("could not write {path}: {e}")),
                }
            }
            println!("trace events: {events}");
        }
    }
}
