//! Traced service run, exported three ways: Chrome trace JSON
//! (`OBS_trace.json`, loadable in Perfetto), a Prometheus text
//! exposition (`OBS_metrics.prom`), and a stall-attribution table on
//! stdout.
//!
//! Pass a duration in seconds to shrink or grow the run
//! (e.g. `obs_report 0.0005` for a CI smoke run).
use bench_harness::experiments::obs_report;

fn main() {
    let mut cfg = obs_report::default_config();
    if let Some(arg) = std::env::args().nth(1) {
        match arg.parse::<f64>() {
            Ok(d) if d > 0.0 => cfg.duration = d,
            _ => {
                eprintln!("usage: obs_report [duration_seconds]");
                std::process::exit(2);
            }
        }
    }

    let artefacts = obs_report::run(cfg);
    let events = match obs_report::trace_event_count(&artefacts.trace_json) {
        Ok(0) => {
            eprintln!("exported trace holds no events");
            std::process::exit(1);
        }
        Ok(n) => n,
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    };

    print!(
        "{}",
        obs_report::stall_table(&artefacts.report.metrics).to_text()
    );
    println!();
    let m = &artefacts.report.metrics;
    println!(
        "service: {} matched, {} spilled, sustained {:.2} M msgs/s over {} shards",
        m.total_matched,
        m.total_spilled,
        m.sustained_rate / 1e6,
        m.shards.len()
    );

    for (path, body) in [
        ("OBS_trace.json", &artefacts.trace_json),
        ("OBS_metrics.prom", &artefacts.exposition),
    ] {
        match std::fs::write(path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("trace events: {events}");
}
