//! Calibration probe: prints simulated matching rates per generation.
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

fn main() {
    println!("== matrix matcher (fully matching, single CTA) ==");
    for len in [64usize, 256, 512, 992, 1024] {
        let w = WorkloadSpec::fully_matching(len, 7).generate();
        print!("len {len:5}");
        for gen in GpuGeneration::ALL {
            let mut gpu = Gpu::new(gen);
            let r = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
            print!(
                "  {}: {:6.2} M/s ({} cyc)",
                gen.short_name(),
                r.matches_per_sec / 1e6,
                r.cycles
            );
        }
        println!();
    }
    println!("== hash matcher (unique tuples) ==");
    for (len, ctas) in [(1024usize, 1u32), (1024, 32), (4096, 32)] {
        let w = WorkloadSpec::unique_tuples(len, 7).generate();
        print!("len {len:5} ctas {ctas:2}");
        for gen in GpuGeneration::ALL {
            let mut gpu = Gpu::new(gen);
            let r = HashMatcher::with_ctas(ctas)
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
                .unwrap();
            print!(
                "  {}: {:7.1} M/s",
                gen.short_name(),
                r.matches_per_sec / 1e6
            );
        }
        println!();
    }
    println!("== partitioned (1024 total, GTX1080) ==");
    let w = WorkloadSpec::fully_matching(1024, 7).generate();
    for q in [1usize, 2, 4, 8, 16, 32] {
        let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
        let r = PartitionedMatcher::new(q)
            .match_batch(&mut gpu, &w.msgs, &w.reqs)
            .unwrap();
        println!(
            "queues {q:2}: {:6.2} M/s  launches {}",
            r.matches_per_sec / 1e6,
            r.launches
        );
    }
}
