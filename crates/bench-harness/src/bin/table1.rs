//! Regenerates Table I (application communication characteristics).
use bench_harness::experiments::traces;

fn main() {
    let analyses = traces::analyze_all(1.0, 0xD0E);
    print!("{}", traces::table1(&analyses).to_text());
}
