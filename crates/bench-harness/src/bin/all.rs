//! Runs every experiment and writes both text reports (stdout) and CSV
//! files under `results/`.
use std::fs;
use std::path::Path;

use bench_harness::experiments::*;
use bench_harness::Report;
use simt_sim::GpuGeneration;

fn emit(dir: &Path, name: &str, report: &Report) {
    print!("{}", report.to_text());
    println!();
    fs::write(dir.join(format!("{name}.csv")), report.to_csv())
        .unwrap_or_else(|e| eprintln!("warning: could not write {name}.csv: {e}"));
}

fn main() {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");

    let analyses = traces::analyze_all(1.0, 0xD0E);
    emit(dir, "table1", &traces::table1(&analyses));
    emit(dir, "figure2_umq", &traces::figure2(&analyses));
    emit(dir, "figure2_prq", &traces::figure2_prq(&analyses));
    emit(dir, "figure6a", &traces::figure6a(&analyses));
    emit(dir, "queue_usage", &traces::queue_usage(&analyses));
    emit(dir, "recommendations", &traces::recommendations(&analyses));

    let f4 = figure4::run(&figure4::DEFAULT_LENS, 7);
    emit(dir, "figure4", &figure4::report(&f4));

    let f5 = figure5::run(&figure5::DEFAULT_QUEUES, &figure5::DEFAULT_LENS, 7);
    emit(dir, "figure5", &figure5::report(&f5));
    let q = [4usize, 16];
    let l = [1024usize];
    let p = figure5::run_generation(GpuGeneration::PascalGtx1080, &q, &l, 7);
    let k = figure5::run_generation(GpuGeneration::KeplerK80, &q, &l, 7);
    let m = figure5::run_generation(GpuGeneration::MaxwellM40, &q, &l, 7);
    println!(
        "GTX1080 speedup: {:.2}x over K80 (paper: 2.12x), {:.2}x over M40 (paper: 1.56x)\n",
        figure5::mean_speedup(&p, &k),
        figure5::mean_speedup(&p, &m)
    );

    let f6b = figure6b::run(&figure6b::DEFAULT_LENS, &figure6b::DEFAULT_CTAS, 7);
    for gen in GpuGeneration::ALL {
        emit(
            dir,
            &format!("figure6b_{}", gen.short_name().to_lowercase()),
            &figure6b::report(&f6b, gen),
        );
    }

    let t2 = table2::run(1024, 17);
    emit(dir, "table2", &table2::report(&t2));

    let cpu = cpu_baseline::run(&cpu_baseline::DEFAULT_LENS, 7);
    emit(dir, "cpu_baseline", &cpu_baseline::report(&cpu));

    let prof = profile::run(1024, 5);
    emit(dir, "profile", &profile::report(&prof));

    let comp = unexpected::run_compaction(&[256, 512, 1024], 5);
    let frac = unexpected::run_fraction(1024, &[10, 25, 50, 75, 90, 100], 5);
    let (a, b) = unexpected::report(&comp, &frac);
    emit(dir, "compaction", &a);
    emit(dir, "match_fraction", &b);

    emit(
        dir,
        "ablation_pipelining",
        &ablations::pipelining(&[128, 256, 512, 992], 3),
    );
    emit(
        dir,
        "ablation_window",
        &ablations::window_sweep(512, &[16, 32, 64, 128], 3),
    );
    emit(
        dir,
        "ablation_long_queues",
        &ablations::long_queues(&[2048, 4096, 8192], 3),
    );
    emit(
        dir,
        "ablation_hash_design",
        &ablations::hash_design(1024, 3),
    );

    let sat = saturation::run(&saturation::DEFAULT_LOADS, 5);
    emit(dir, "saturation", &saturation::report(&sat));

    let sc = scaling::run(&scaling::DEFAULT_RANKS, 8, 7);
    emit(dir, "scaling", &scaling::report(&sc));
}
