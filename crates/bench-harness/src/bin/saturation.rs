//! Sustained message-rate ceilings per engine (service model).
use bench_harness::experiments::saturation;

fn main() {
    let pts = saturation::run(&saturation::DEFAULT_LOADS, 5);
    print!("{}", saturation::report(&pts).to_text());
}
