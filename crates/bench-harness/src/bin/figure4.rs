//! Regenerates Figure 4 (MPI-compliant matrix matching rate sweep).
use bench_harness::experiments::figure4;

fn main() {
    let pts = figure4::run(&figure4::DEFAULT_LENS, 7);
    print!("{}", figure4::report(&pts).to_text());
}
