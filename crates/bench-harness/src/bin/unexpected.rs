//! Section VI-B: compaction overhead and match-fraction sensitivity.
use bench_harness::experiments::unexpected;

fn main() {
    let comp = unexpected::run_compaction(&[256, 512, 1024], 5);
    let frac = unexpected::run_fraction(1024, &[10, 25, 50, 75, 90, 100], 5);
    let (a, b) = unexpected::report(&comp, &frac);
    print!("{}", a.to_text());
    println!();
    print!("{}", b.to_text());
}
