//! Multi-tenant QoS bench: Zipf tenant popularity × shard count sweep
//! plus the isolation and live-resharding invariant scenarios, each run
//! under both schedulers. Prints the sweep table and writes the
//! artefact to `BENCH_tenancy.json`. Pass `--smoke` for the reduced CI
//! sweep (keeps the headline point and both scenarios).
use bench_harness::experiments::tenancy_scaling;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tenants, shards): (&[usize], &[usize]) = if smoke {
        (
            &tenancy_scaling::SMOKE_TENANTS,
            &tenancy_scaling::SMOKE_SHARDS,
        )
    } else {
        (
            &tenancy_scaling::DEFAULT_TENANTS,
            &tenancy_scaling::DEFAULT_SHARDS,
        )
    };
    let points = tenancy_scaling::sweep(tenants, shards, 5);
    let bench = tenancy_scaling::bench(
        points,
        tenancy_scaling::isolation(11),
        tenancy_scaling::resharding(23),
    );
    print!("{}", tenancy_scaling::report(&bench).to_text());
    println!(
        "isolation: guaranteed shed {} / spilled {}, aggressor shed {}, schedulers identical {}",
        bench.isolation.global_clock.guaranteed_shed,
        bench.isolation.global_clock.guaranteed_spilled,
        bench.isolation.global_clock.aggressor_shed,
        bench.isolation.schedulers_byte_identical,
    );
    println!(
        "resharding: {} migrations, static match {}, schedulers identical {}",
        bench.resharding.global_clock.migrations,
        bench.resharding.global_clock.completions_match_static,
        bench.resharding.schedulers_byte_identical,
    );
    let json = tenancy_scaling::metrics_json(&bench);
    match std::fs::write("BENCH_tenancy.json", &json) {
        Ok(()) => println!("wrote BENCH_tenancy.json"),
        Err(e) => eprintln!("could not write BENCH_tenancy.json: {e}"),
    }
}
