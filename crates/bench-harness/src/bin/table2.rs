//! Regenerates Table II (relaxation lattice with measured rates).
use bench_harness::experiments::table2;

fn main() {
    let rows = table2::run(1024, 17);
    print!("{}", table2::report(&rows).to_text());
}
