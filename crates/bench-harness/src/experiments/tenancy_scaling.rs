//! Multi-tenant QoS bench: Zipf tenant popularity × bursty arrivals,
//! swept over tenant count × shard count, plus the two invariant
//! scenarios CI gates on:
//!
//! * **isolation** — an unmetered best-effort aggressor saturates the
//!   service while a small guaranteed tenant stays conformant; the
//!   guaranteed tenant must finish with zero shed and zero spill, under
//!   both schedulers, with byte-identical artefacts between them;
//! * **resharding** — a hot tenant confined to one shard triggers the
//!   live reshard planner; the migrated run's per-stream completion
//!   sequences must byte-equal a static run that starts from the final
//!   placement.
//!
//! Everything is pure simulation at a fixed seed, so the artefact
//! (`BENCH_tenancy.json`) is deterministic; `obs_report --check` diffs
//! its headline sustained rate and invariants against
//! `docs/bench_baseline.json`.

use gpu_msg::{
    tenancy::zipf_shares, ArrivalPattern, QosClass, ReshardPolicy, Scheduler, ServiceEngine,
    ServiceMetrics, ShardEnginePolicy, ShardedMatchService, ShardedServiceConfig, TenancyConfig,
    TenantSpec,
};
use serde::{Deserialize, Serialize};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// Tenant counts swept in the full run.
pub const DEFAULT_TENANTS: [usize; 3] = [2, 4, 8];

/// Shard counts swept in the full run.
pub const DEFAULT_SHARDS: [usize; 2] = [2, 4];

/// Reduced CI smoke sweep (must keep the headline point).
pub const SMOKE_TENANTS: [usize; 2] = [2, 4];

/// Reduced CI smoke shard axis (must keep the headline point).
pub const SMOKE_SHARDS: [usize; 1] = [4];

/// Aggregate offered load for the sweep (messages/s).
pub const DEFAULT_OFFERED: f64 = 16.0e6;

/// The sweep point whose sustained rate the regression gate watches.
pub const HEADLINE_POINT: (usize, usize) = (4, 4);

/// Zipf exponent over tenant popularity.
pub const ZIPF_EXPONENT: f64 = 1.0;

const GEN: GpuGeneration = GpuGeneration::PascalGtx1080;

/// Per-QoS-class rollup of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassRow {
    /// Class label (`guaranteed` / `burstable` / `best_effort`).
    pub class: String,
    /// Tenants in the class at this point.
    pub tenants: u64,
    /// Messages that arrived for the class.
    pub arrivals: u64,
    /// Arrivals admitted (journaled).
    pub admitted: u64,
    /// Messages matched.
    pub matched: u64,
    /// Arrivals rejected for lack of physical queue space.
    pub spilled: u64,
    /// Arrivals shed by quota or fill policy.
    pub shed: u64,
}

/// One tenant-count × shard-count sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Tenants at this point (Zipf-shared).
    pub tenants: u64,
    /// Shards at this point.
    pub shards: u64,
    /// Aggregate matched messages per simulated second.
    pub sustained_rate: f64,
    /// Messages matched.
    pub matched: u64,
    /// Messages spilled (physical overflow).
    pub spilled: u64,
    /// Messages shed (tenant policy + deadline).
    pub shed: u64,
    /// Planned migrations the reshard planner completed.
    pub migrations: u64,
    /// Per-class rollups, in class-declaration order.
    pub classes: Vec<ClassRow>,
}

/// One scheduler's isolation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationOutcome {
    /// Arrivals of the guaranteed tenant.
    pub guaranteed_arrivals: u64,
    /// Its admitted count (must equal arrivals).
    pub guaranteed_admitted: u64,
    /// Its shed count (the invariant: must be 0).
    pub guaranteed_shed: u64,
    /// Its spill count (the invariant: must be 0).
    pub guaranteed_spilled: u64,
    /// Arrivals of the best-effort aggressor.
    pub aggressor_arrivals: u64,
    /// The aggressor's shed count (must be > 0: it saturates).
    pub aggressor_shed: u64,
}

/// The isolation scenario under both schedulers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolationSection {
    /// Outcome under `Scheduler::GlobalClock`.
    pub global_clock: IsolationOutcome,
    /// Outcome under `Scheduler::ThreadPerShard`.
    pub thread_per_shard: IsolationOutcome,
    /// Completions and metrics JSON byte-equal across the schedulers.
    pub schedulers_byte_identical: bool,
}

/// One scheduler's resharding outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardOutcome {
    /// Planned migrations completed (must be ≥ 1: the skew triggers).
    pub migrations: u64,
    /// Planned migrations aborted.
    pub aborted: u64,
    /// Journal entries that moved with migrated slots.
    pub transferred_in: u64,
    /// Live-resharded completions byte-equal the static run that
    /// started from the final placement (the invariant).
    pub completions_match_static: bool,
}

/// The resharding scenario under both schedulers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardSection {
    /// Outcome under `Scheduler::GlobalClock`.
    pub global_clock: ReshardOutcome,
    /// Outcome under `Scheduler::ThreadPerShard`.
    pub thread_per_shard: ReshardOutcome,
    /// Completions and metrics JSON byte-equal across the schedulers.
    pub schedulers_byte_identical: bool,
}

/// The whole `BENCH_tenancy.json` artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenancyBench {
    /// Aggregate offered load of the sweep (messages/s).
    pub offered_rate: f64,
    /// Simulated duration per run (seconds).
    pub duration: f64,
    /// Zipf exponent over tenant popularity.
    pub zipf_exponent: f64,
    /// Tenant count of the headline point.
    pub headline_tenants: u64,
    /// Shard count of the headline point.
    pub headline_shards: u64,
    /// Sustained rate of the headline point (regression-gated).
    pub headline_sustained_rate: f64,
    /// One row per sweep point, tenant count major, shards minor.
    pub sweep: Vec<SweepPoint>,
    /// The noisy-neighbour isolation scenario.
    pub isolation: IsolationSection,
    /// The live-resharding byte-equality scenario.
    pub resharding: ReshardSection,
}

/// Zipf-shared tenants with classes cycling guaranteed → burstable →
/// best-effort down the popularity ranking. Metered classes get 1.5×
/// their fair share as quota so conformant traffic passes while bursts
/// are policed; odd-ranked tenants arrive bursty.
fn zipf_tenants(n: usize, offered: f64) -> Vec<TenantSpec> {
    let shares = zipf_shares(n, ZIPF_EXPONENT);
    shares
        .iter()
        .enumerate()
        .map(|(i, &share)| {
            let class = [
                QosClass::Guaranteed,
                QosClass::Burstable,
                QosClass::BestEffort,
            ][i % 3];
            let metered = !matches!(class, QosClass::BestEffort);
            TenantSpec {
                streams: 2,
                quota_rate: if metered { share * offered * 1.5 } else { 0.0 },
                burst: if metered { 256.0 } else { 0.0 },
                pattern: if i % 2 == 1 {
                    ArrivalPattern::Bursty {
                        period: 2.0e-4,
                        duty: 0.5,
                    }
                } else {
                    ArrivalPattern::Uniform
                },
                ..TenantSpec::new(&format!("tenant{i}"), class, share)
            }
        })
        .collect()
}

fn sweep_cfg(shards: usize, scheduler: Scheduler, seed: u64) -> ShardedServiceConfig {
    ShardedServiceConfig {
        shards,
        arrival_rate: DEFAULT_OFFERED,
        duration: 1.0e-3,
        queue_capacity: 4096,
        policy: ShardEnginePolicy::Fixed(ServiceEngine::Hash),
        seed,
        scheduler,
        ..Default::default()
    }
}

fn class_rows(m: &ServiceMetrics) -> Vec<ClassRow> {
    let mut rows: Vec<ClassRow> = Vec::new();
    for t in &m.tenants {
        match rows.iter_mut().find(|r| r.class == t.class) {
            Some(r) => {
                r.tenants += 1;
                r.arrivals += t.arrivals;
                r.admitted += t.admitted;
                r.matched += t.matched;
                r.spilled += t.overflow.spilled;
                r.shed += t.overflow.shed;
            }
            None => rows.push(ClassRow {
                class: t.class.clone(),
                tenants: 1,
                arrivals: t.arrivals,
                admitted: t.admitted,
                matched: t.matched,
                spilled: t.overflow.spilled,
                shed: t.overflow.shed,
            }),
        }
    }
    rows
}

/// Run the Zipf sweep (tenant count major, shard count minor) with the
/// default reshard policy armed.
pub fn sweep(tenant_counts: &[usize], shard_counts: &[usize], seed: u64) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &tenants in tenant_counts {
        for &shards in shard_counts {
            let tenancy = TenancyConfig {
                reshard: Some(ReshardPolicy::default()),
                ..TenancyConfig::new(zipf_tenants(tenants, DEFAULT_OFFERED))
            };
            let cfg = sweep_cfg(shards, Scheduler::GlobalClock, seed);
            let m = ShardedMatchService::with_tenancy(GEN, cfg, tenancy)
                .run()
                .metrics;
            points.push(SweepPoint {
                tenants: tenants as u64,
                shards: shards as u64,
                sustained_rate: m.sustained_rate,
                matched: m.total_matched,
                spilled: m.total_spilled,
                shed: m.total_shed,
                migrations: m.total_migrations,
                classes: class_rows(&m),
            });
        }
    }
    points
}

fn run_completions(
    cfg: ShardedServiceConfig,
    tenancy: TenancyConfig,
    assignments: Option<Vec<usize>>,
) -> (Vec<Vec<u64>>, ServiceMetrics, Vec<usize>) {
    let mut svc = ShardedMatchService::with_tenancy(GEN, cfg, tenancy);
    if let Some(a) = assignments {
        svc.set_assignments(a);
    }
    svc.set_record_completions(true);
    let r = svc.run();
    let p = svc.placement();
    let finals = (0..p.slots()).map(|j| p.home_of_slot(j)).collect();
    (
        r.completions.expect("recording was enabled"),
        r.metrics,
        finals,
    )
}

/// The noisy-neighbour scenario: a 2%-share guaranteed tenant next to a
/// 98%-share unmetered best-effort aggressor on the slow matrix engine,
/// far past saturation.
pub fn isolation(seed: u64) -> IsolationSection {
    let mut outcomes = Vec::new();
    let mut artefacts = Vec::new();
    for scheduler in [Scheduler::GlobalClock, Scheduler::ThreadPerShard] {
        let cfg = ShardedServiceConfig {
            shards: 2,
            arrival_rate: 48.0e6,
            duration: 1.0e-3,
            queue_capacity: 1024,
            policy: ShardEnginePolicy::Fixed(ServiceEngine::Matrix),
            seed,
            scheduler,
            ..Default::default()
        };
        let tenancy = TenancyConfig::new(vec![
            TenantSpec {
                streams: 2,
                ..TenantSpec::new("gold", QosClass::Guaranteed, 0.02)
            },
            TenantSpec {
                streams: 2,
                pattern: ArrivalPattern::Bursty {
                    period: 2.0e-4,
                    duty: 0.5,
                },
                ..TenantSpec::new("noisy", QosClass::BestEffort, 0.98)
            },
        ]);
        let (completions, m, _) = run_completions(cfg, tenancy, None);
        let gold = &m.tenants[0];
        let noisy = &m.tenants[1];
        outcomes.push(IsolationOutcome {
            guaranteed_arrivals: gold.arrivals,
            guaranteed_admitted: gold.admitted,
            guaranteed_shed: gold.overflow.shed,
            guaranteed_spilled: gold.overflow.spilled,
            aggressor_arrivals: noisy.arrivals,
            aggressor_shed: noisy.overflow.shed,
        });
        artefacts.push((completions, m.to_json()));
    }
    let thread_per_shard = outcomes.pop().expect("two schedulers ran");
    let global_clock = outcomes.pop().expect("two schedulers ran");
    IsolationSection {
        global_clock,
        thread_per_shard,
        schedulers_byte_identical: artefacts[0] == artefacts[1],
    }
}

/// The live-resharding scenario: a hot tenant confined to shard 0
/// overloads it until the planner moves slots, then the same workload
/// is replayed from the final placement and byte-compared.
pub fn resharding(seed: u64) -> ReshardSection {
    let mut outcomes = Vec::new();
    let mut artefacts = Vec::new();
    for scheduler in [Scheduler::GlobalClock, Scheduler::ThreadPerShard] {
        let cfg = ShardedServiceConfig {
            shards: 2,
            arrival_rate: 8.0e6,
            duration: 1.0e-3,
            queue_capacity: 1 << 20,
            drain: true,
            policy: ShardEnginePolicy::Fixed(ServiceEngine::Hash),
            seed,
            scheduler,
            ..Default::default()
        };
        let tenancy = TenancyConfig {
            reshard: Some(ReshardPolicy {
                tick: 5.0e-5,
                min_imbalance: 32,
                max_migrations: 2,
            }),
            ..TenancyConfig::new(vec![
                TenantSpec {
                    streams: 2,
                    shard_set: vec![0],
                    ..TenantSpec::new("hot", QosClass::Guaranteed, 0.875)
                },
                TenantSpec {
                    shard_set: vec![1],
                    ..TenantSpec::new("cold", QosClass::Guaranteed, 0.125)
                },
            ])
        };
        let (live, m, finals) = run_completions(cfg, tenancy.clone(), None);
        let static_tenancy = TenancyConfig {
            reshard: None,
            ..tenancy
        };
        let (fixed, _, _) = run_completions(cfg, static_tenancy, Some(finals));
        outcomes.push(ReshardOutcome {
            migrations: m.total_migrations,
            aborted: m.aborted_migrations,
            transferred_in: m.shards.iter().map(|s| s.transferred_in).sum(),
            completions_match_static: live == fixed,
        });
        artefacts.push((live, m.to_json()));
    }
    let thread_per_shard = outcomes.pop().expect("two schedulers ran");
    let global_clock = outcomes.pop().expect("two schedulers ran");
    ReshardSection {
        global_clock,
        thread_per_shard,
        schedulers_byte_identical: artefacts[0] == artefacts[1],
    }
}

/// Fold sweep + scenarios into the persisted artefact.
///
/// # Panics
/// Panics if the sweep is missing the headline point.
pub fn bench(
    points: Vec<SweepPoint>,
    isolation: IsolationSection,
    resharding: ReshardSection,
) -> TenancyBench {
    let (ht, hs) = HEADLINE_POINT;
    let headline = points
        .iter()
        .find(|p| p.tenants == ht as u64 && p.shards == hs as u64)
        .unwrap_or_else(|| panic!("sweep must include the headline point {ht}x{hs}"));
    TenancyBench {
        offered_rate: DEFAULT_OFFERED,
        duration: 1.0e-3,
        zipf_exponent: ZIPF_EXPONENT,
        headline_tenants: ht as u64,
        headline_shards: hs as u64,
        headline_sustained_rate: headline.sustained_rate,
        sweep: points,
        isolation,
        resharding,
    }
}

/// Render the sweep as a table.
pub fn report(b: &TenancyBench) -> Report {
    let mut r = Report::new(
        format!(
            "Tenancy scaling: Zipf(s={}) tenants x shards, {:.0} M msgs/s offered, hash, GTX 1080",
            b.zipf_exponent,
            b.offered_rate / 1e6
        ),
        &[
            "tenants",
            "shards",
            "sustained_M/s",
            "matched",
            "spilled",
            "shed",
            "migrations",
        ],
    );
    for p in &b.sweep {
        r.push(vec![
            p.tenants.to_string(),
            p.shards.to_string(),
            format!("{:.2}", p.sustained_rate / 1e6),
            p.matched.to_string(),
            p.spilled.to_string(),
            p.shed.to_string(),
            p.migrations.to_string(),
        ]);
    }
    r
}

/// The JSON artefact (`BENCH_tenancy.json`).
pub fn metrics_json(b: &TenancyBench) -> String {
    serde::json::to_string_pretty(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_tenants_cover_all_classes_and_normalise() {
        let ts = zipf_tenants(6, DEFAULT_OFFERED);
        assert_eq!(ts.len(), 6);
        let total: f64 = ts.iter().map(|t| t.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(ts[0].share > ts[5].share, "popularity must be skewed");
        for class in ["guaranteed", "burstable", "best_effort"] {
            assert!(
                ts.iter().any(|t| t.class.label() == class),
                "missing {class}"
            );
        }
    }

    #[test]
    fn isolation_invariant_holds_and_is_scheduler_independent() {
        let s = isolation(11);
        for o in [&s.global_clock, &s.thread_per_shard] {
            assert_eq!(o.guaranteed_shed, 0);
            assert_eq!(o.guaranteed_spilled, 0);
            assert_eq!(o.guaranteed_admitted, o.guaranteed_arrivals);
            assert!(o.aggressor_shed > 0, "the aggressor must saturate");
        }
        assert!(s.schedulers_byte_identical);
    }

    #[test]
    fn resharding_invariant_holds_and_is_scheduler_independent() {
        let s = resharding(23);
        for o in [&s.global_clock, &s.thread_per_shard] {
            assert!(o.migrations >= 1, "the skew must trigger a migration");
            assert!(o.completions_match_static);
            assert!(o.transferred_in > 0);
        }
        assert!(s.schedulers_byte_identical);
    }

    #[test]
    fn bench_artefact_round_trips_and_keeps_the_headline() {
        let points = sweep(&SMOKE_TENANTS, &SMOKE_SHARDS, 5);
        let b = bench(points, isolation(11), resharding(23));
        assert!(b.headline_sustained_rate > 0.0);
        let json = metrics_json(&b);
        let back: TenancyBench = serde::json::from_str(&json).expect("artefact must parse back");
        assert_eq!(back, b);
        for p in &back.sweep {
            let class_arrivals: u64 = p.classes.iter().map(|c| c.arrivals).sum();
            assert!(class_arrivals > 0, "class rows must carry the traffic");
        }
    }
}
