//! Section VI-B: the cost of *unexpected messages*.
//!
//! Two effects are quantified:
//!
//! 1. **Compaction overhead** — when some entries survive a matching
//!    pass, the queues are compacted (prefix scan + move). The paper
//!    measures this at ~10% of the matching rate.
//! 2. **Match-fraction sensitivity** — unmatched messages traverse the
//!    whole receive queue without progress, so the rate scales with the
//!    fraction of messages that match ("if only half of the messages can
//!    be matched, the matching rate is reduced by about 50%").

use msg_match::compaction::compact_queue;
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// Compaction-overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPoint {
    /// Queue length.
    pub len: usize,
    /// Matching-only rate.
    pub match_mps: f64,
    /// Rate including queue compaction.
    pub with_compaction_mps: f64,
    /// Overhead percentage.
    pub overhead_pct: f64,
}

/// Match-fraction sweep point.
#[derive(Debug, Clone, Copy)]
pub struct FractionPoint {
    /// Percent of messages with a matching receive.
    pub match_pct: u32,
    /// Effective matching rate (matches per second of kernel time).
    pub matches_per_sec: f64,
}

/// Measure compaction overhead at several queue lengths (GTX 1080).
pub fn run_compaction(lens: &[usize], seed: u64) -> Vec<CompactionPoint> {
    lens.iter()
        .map(|&len| {
            let w = WorkloadSpec {
                len,
                match_pct: 90,
                seed,
                ..Default::default()
            }
            .generate();
            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            let r = MatrixMatcher::default().match_iterative(&mut gpu, &w.msgs, &w.reqs);
            // Compact both queues under the ~10% residue mask.
            let keep: Vec<u32> = (0..len).map(|i| (i % 10 == 0) as u32).collect();
            let packed_m: Vec<u64> = w.msgs.iter().map(Envelope::pack).collect();
            let packed_r: Vec<u64> = w.reqs.iter().map(RecvRequest::pack).collect();
            let (_, c1) = compact_queue(&mut gpu, &packed_m, &keep);
            let (_, c2) = compact_queue(&mut gpu, &packed_r, &keep);
            let match_s = r.seconds;
            let total_s = r.seconds + c1.seconds + c2.seconds;
            CompactionPoint {
                len,
                match_mps: r.matches as f64 / match_s,
                with_compaction_mps: r.matches as f64 / total_s,
                overhead_pct: 100.0 * (total_s - match_s) / total_s,
            }
        })
        .collect()
}

/// Sweep the match fraction at a fixed queue length (GTX 1080).
pub fn run_fraction(len: usize, fractions: &[u32], seed: u64) -> Vec<FractionPoint> {
    fractions
        .iter()
        .map(|&match_pct| {
            let w = WorkloadSpec {
                len,
                match_pct,
                seed,
                ..Default::default()
            }
            .generate();
            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            let r = MatrixMatcher::default().match_iterative(&mut gpu, &w.msgs, &w.reqs);
            FractionPoint {
                match_pct,
                matches_per_sec: r.matches as f64 / r.seconds.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Render both measurements.
pub fn report(comp: &[CompactionPoint], frac: &[FractionPoint]) -> (Report, Report) {
    let mut a = Report::new(
        "Section VI-B (1): queue compaction overhead, GTX 1080",
        &["queue_len", "match_only", "with_compaction", "overhead_%"],
    );
    for p in comp {
        a.push(vec![
            p.len.to_string(),
            fmt_mps(p.match_mps),
            fmt_mps(p.with_compaction_mps),
            format!("{:.1}", p.overhead_pct),
        ]);
    }
    let mut b = Report::new(
        "Section VI-B (2): matching rate vs. match fraction, GTX 1080",
        &["match_%", "M matches/s"],
    );
    for p in frac {
        b.push(vec![p.match_pct.to_string(), fmt_mps(p.matches_per_sec)]);
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_costs_single_digit_to_low_double_digit_percent() {
        let pts = run_compaction(&[1024], 5);
        let o = pts[0].overhead_pct;
        assert!(
            (1.0..25.0).contains(&o),
            "paper reports ~10% compaction overhead, got {o:.1}%"
        );
    }

    #[test]
    fn rate_tracks_match_fraction() {
        let pts = run_fraction(512, &[50, 100], 5);
        let half = pts[0].matches_per_sec;
        let full = pts[1].matches_per_sec;
        let ratio = half / full;
        assert!(
            (0.3..0.75).contains(&ratio),
            "50% matchable should roughly halve the rate, ratio {ratio:.2}"
        );
    }
}
