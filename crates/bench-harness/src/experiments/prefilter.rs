//! Hot-path matching speed: the counting-digest pre-filter sweep.
//!
//! The paper's *no unexpected messages* relaxation wins by never paying
//! for fruitless traversals; [`msg_match::prefilter`] recovers part of
//! that win with **no** relaxation by screening each batch against O(1)
//! queue summaries first. This experiment quantifies the recovery on
//! the matrix engine over an unexpected-ratio × queue-depth grid —
//! matching rate, device cycles and memory-dependency stalls with the
//! screen on vs off — and, for the CPU baseline, how many list entries
//! the same filters stop the list matcher from inspecting.
//!
//! Screening is maintained incrementally by the queues (host-side in
//! the domain, O(1) per insert/remove), so the screened runs charge
//! only the surviving batch to the device; the unscreened runs pay the
//! full traversal the relaxation-free engine otherwise performs.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// One grid point: the same generated workload matched with and without
/// the pre-filter screen, plus the list-baseline inspection counts.
#[derive(Debug, Clone)]
pub struct Point {
    /// Percent of messages with a matching receive (the complement is
    /// the unexpected ratio).
    pub match_pct: u32,
    /// Queue depth (messages and requests per side).
    pub depth: usize,
    /// Matches found (identical screened and unscreened — asserted).
    pub matches: u64,
    /// Matrix cycles without screening.
    pub full_cycles: u64,
    /// Matrix cycles on the screened views.
    pub screened_cycles: u64,
    /// Memory-dependency stall cycles without screening.
    pub full_mem_stall: u64,
    /// Memory-dependency stall cycles on the screened views.
    pub screened_mem_stall: u64,
    /// Matching rate without screening (matches/s of kernel time).
    pub full_mps: f64,
    /// Matching rate with screening.
    pub screened_mps: f64,
    /// Digest probes the screen performed (both sides).
    pub probes: u64,
    /// Messages the screen rejected as unmatchable.
    pub rejected_msgs: u64,
    /// Requests the screen rejected as unsatisfiable.
    pub rejected_reqs: u64,
    /// Queue entries the list baseline walks without the filter.
    pub list_inspected_plain: u64,
    /// Queue entries the list baseline walks with the filter.
    pub list_inspected_filtered: u64,
    /// Walks the list filter skipped outright.
    pub list_rejections: u64,
}

/// Queue depths swept. All fit a single launch window (`MAX_BATCH`):
/// beyond it the screen repacks survivors across launch boundaries,
/// letting the iterative driver find cross-batch matches earlier — a
/// genuine win, but one that breaks the bit-identity this sweep asserts
/// as its soundness check, so the grid stays within one launch.
pub const DEFAULT_DEPTHS: [usize; 3] = [256, 512, 1024];

/// Match percentages swept (100 − pct is the unexpected ratio).
pub const DEFAULT_MATCH_PCTS: [u32; 3] = [100, 50, 10];

/// Total queue entries a list-matcher run inspected.
fn inspected(m: &ListMatcher) -> u64 {
    m.umq_attempts
        .iter()
        .chain(&m.prq_attempts)
        .map(|a| a.search_len as u64)
        .sum()
}

/// Run the grid on the GTX 1080. Every point asserts the screened
/// assignment is bit-identical to the unscreened one before reporting
/// any number — the sweep refuses to benchmark an unsound filter.
pub fn run(depths: &[usize], match_pcts: &[u32], seed: u64) -> Vec<Point> {
    let matcher = MatrixMatcher::default();
    let mut out = Vec::new();
    for &depth in depths {
        assert!(
            depth <= MAX_BATCH,
            "sweep depths must fit one launch window (see DEFAULT_DEPTHS)"
        );
        for &match_pct in match_pcts {
            let w = WorkloadSpec {
                len: depth,
                match_pct,
                seed,
                ..Default::default()
            }
            .generate();

            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            let full = matcher.match_iterative(&mut gpu, &w.msgs, &w.reqs);

            let screen = screen_batch(&w.msgs, &w.reqs);
            let sub_msgs: Vec<Envelope> = screen
                .msg_keep
                .iter()
                .map(|&i| w.msgs[i as usize])
                .collect();
            let sub_reqs: Vec<RecvRequest> = screen
                .req_keep
                .iter()
                .map(|&j| w.reqs[j as usize])
                .collect();
            let mut gpu2 = Gpu::new(GpuGeneration::PascalGtx1080);
            let screened = if screen.skip_launch() {
                GpuMatchReport::from_launches(vec![None; sub_reqs.len()], &[])
            } else {
                matcher.match_iterative(&mut gpu2, &sub_msgs, &sub_reqs)
            };
            let expanded = expand_assignment(w.reqs.len(), &screen, &screened.assignment);
            assert_eq!(
                full.assignment, expanded,
                "screening changed match results at depth {depth}, {match_pct}% matching"
            );

            let (plain_walked, filtered_walked, filter_rejections) = list_baseline(&w);

            out.push(Point {
                match_pct,
                depth,
                matches: full.matches,
                full_cycles: full.cycles,
                screened_cycles: screened.cycles,
                full_mem_stall: full.stall_cycles[1],
                screened_mem_stall: screened.stall_cycles[1],
                full_mps: full.matches as f64 / full.seconds.max(f64::MIN_POSITIVE),
                screened_mps: full.matches as f64 / screened.seconds.max(f64::MIN_POSITIVE),
                probes: (w.msgs.len() + w.reqs.len()) as u64,
                rejected_msgs: screen.rejected_msgs,
                rejected_reqs: screen.rejected_reqs,
                list_inspected_plain: plain_walked,
                list_inspected_filtered: filtered_walked,
                list_rejections: filter_rejections,
            });
        }
    }
    out
}

/// Drive the plain and filtered list matchers through the workload
/// (arrivals, then posts) and return `(plain walked, filtered walked,
/// filtered rejections)`, asserting identical match results first.
fn list_baseline(w: &Workload) -> (u64, u64, u64) {
    let mut plain = ListMatcher::with_stats(true);
    let mut filtered = ListMatcher::with_prefilter(true);
    for &m in &w.msgs {
        assert_eq!(
            plain.arrive(m),
            filtered.arrive(m),
            "filter changed a match"
        );
    }
    for &r in &w.reqs {
        assert_eq!(plain.post(r), filtered.post(r), "filter changed a match");
    }
    (
        inspected(&plain),
        inspected(&filtered),
        filtered.prefilter_rejections,
    )
}

/// Render the grid as a table.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "Pre-filter screen: matrix engine with vs without, GTX 1080",
        &[
            "unexpected_%",
            "depth",
            "off",
            "on",
            "cycle_save_%",
            "mem_stall_save_%",
            "rejected",
            "list_walk_save_%",
        ],
    );
    for p in points {
        let save = |full: u64, part: u64| {
            if full == 0 {
                0.0
            } else {
                100.0 * (full.saturating_sub(part)) as f64 / full as f64
            }
        };
        r.push(vec![
            (100 - p.match_pct).to_string(),
            p.depth.to_string(),
            fmt_mps(p.full_mps),
            fmt_mps(p.screened_mps),
            format!("{:.1}", save(p.full_cycles, p.screened_cycles)),
            format!("{:.1}", save(p.full_mem_stall, p.screened_mem_stall)),
            (p.rejected_msgs + p.rejected_reqs).to_string(),
            format!(
                "{:.1}",
                save(p.list_inspected_plain, p.list_inspected_filtered)
            ),
        ]);
    }
    r
}

/// The `prefilter` section of `BENCH_service.json`: the full grid plus
/// a `headline` object summarising the deepest, most-unexpected point —
/// the configuration the screen exists for — which the
/// `obs_report --check` regression gate watches.
pub fn section_value(points: &[Point]) -> serde::Value {
    let rows: Vec<serde::Value> = points
        .iter()
        .map(|p| {
            serde::Value::Object(vec![
                (
                    "unexpected_pct".to_string(),
                    serde::Value::U64((100 - p.match_pct) as u64),
                ),
                ("depth".to_string(), serde::Value::U64(p.depth as u64)),
                ("matches".to_string(), serde::Value::U64(p.matches)),
                ("full_cycles".to_string(), serde::Value::U64(p.full_cycles)),
                (
                    "screened_cycles".to_string(),
                    serde::Value::U64(p.screened_cycles),
                ),
                (
                    "full_mem_stall".to_string(),
                    serde::Value::U64(p.full_mem_stall),
                ),
                (
                    "screened_mem_stall".to_string(),
                    serde::Value::U64(p.screened_mem_stall),
                ),
                (
                    "full_matches_per_sec".to_string(),
                    serde::Value::F64(p.full_mps),
                ),
                (
                    "screened_matches_per_sec".to_string(),
                    serde::Value::F64(p.screened_mps),
                ),
                ("probes".to_string(), serde::Value::U64(p.probes)),
                (
                    "rejected_msgs".to_string(),
                    serde::Value::U64(p.rejected_msgs),
                ),
                (
                    "rejected_reqs".to_string(),
                    serde::Value::U64(p.rejected_reqs),
                ),
                (
                    "list_inspected_plain".to_string(),
                    serde::Value::U64(p.list_inspected_plain),
                ),
                (
                    "list_inspected_filtered".to_string(),
                    serde::Value::U64(p.list_inspected_filtered),
                ),
                (
                    "list_rejections".to_string(),
                    serde::Value::U64(p.list_rejections),
                ),
            ])
        })
        .collect();

    let headline = points
        .iter()
        .max_by_key(|p| (100 - p.match_pct, p.depth))
        .expect("sweep has points");
    let speedup = if headline.screened_cycles == 0 {
        f64::INFINITY
    } else {
        headline.full_cycles as f64 / headline.screened_cycles as f64
    };
    serde::Value::Object(vec![
        ("sweep".to_string(), serde::Value::Array(rows)),
        (
            "headline".to_string(),
            serde::Value::Object(vec![
                (
                    "unexpected_pct".to_string(),
                    serde::Value::U64((100 - headline.match_pct) as u64),
                ),
                (
                    "depth".to_string(),
                    serde::Value::U64(headline.depth as u64),
                ),
                ("cycle_speedup".to_string(), serde::Value::F64(speedup)),
                (
                    "mem_dependency_stall_full".to_string(),
                    serde::Value::U64(headline.full_mem_stall),
                ),
                (
                    "mem_dependency_stall_screened".to_string(),
                    serde::Value::U64(headline.screened_mem_stall),
                ),
                (
                    "rejected_total".to_string(),
                    serde::Value::U64(headline.rejected_msgs + headline.rejected_reqs),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_speeds_up_unexpected_heavy_matching() {
        let pts = run(&[1024], &[100, 10], 5);
        let heavy = pts
            .iter()
            .find(|p| p.match_pct == 10)
            .expect("heavy point present");
        assert!(
            heavy.screened_mps > heavy.full_mps,
            "90% unexpected must match faster screened: {:.2e} vs {:.2e}",
            heavy.screened_mps,
            heavy.full_mps
        );
        assert!(
            heavy.screened_cycles < heavy.full_cycles,
            "screened run must spend fewer device cycles"
        );
        assert!(
            heavy.screened_mem_stall < heavy.full_mem_stall,
            "skipping fruitless traversals must cut memory-dependency stalls: {} vs {}",
            heavy.screened_mem_stall,
            heavy.full_mem_stall
        );
        assert!(
            heavy.rejected_msgs > 0 && heavy.rejected_reqs > 0,
            "the screen must reject on both sides: {heavy:?}"
        );
        // Fully-matching traffic: nothing to reject, no cycles to save —
        // but nothing lost either beyond the (free, host-side) probes.
        let clean = pts
            .iter()
            .find(|p| p.match_pct == 100)
            .expect("clean point present");
        assert_eq!(clean.screened_cycles, clean.full_cycles);
    }

    #[test]
    fn list_baseline_inspects_fewer_entries_with_the_filter() {
        let pts = run(&[512], &[10], 5);
        let p = &pts[0];
        assert!(
            p.list_inspected_filtered < p.list_inspected_plain,
            "the filter must skip fruitless walks: {} vs {}",
            p.list_inspected_filtered,
            p.list_inspected_plain
        );
        assert!(p.list_rejections > 0);
    }

    #[test]
    fn section_value_carries_sweep_and_headline() {
        let pts = run(&[256], &[100, 10], 5);
        let v = section_value(&pts);
        let sweep = v.field("sweep").expect("sweep array");
        match sweep {
            serde::Value::Array(rows) => assert_eq!(rows.len(), pts.len()),
            other => panic!("sweep must be an array, got {other:?}"),
        }
        let headline = v.field("headline").expect("headline object");
        for key in [
            "unexpected_pct",
            "depth",
            "cycle_speedup",
            "mem_dependency_stall_full",
            "mem_dependency_stall_screened",
            "rejected_total",
        ] {
            headline
                .field(key)
                .unwrap_or_else(|_| panic!("missing headline field {key}"));
        }
    }
}
