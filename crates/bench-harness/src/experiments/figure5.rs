//! Figure 5: rank-partitioned matching rate vs. total queue length for
//! 1–32 queues (GTX 1080), with the required CTA counts annotated, plus
//! the paper's cross-generation speedups (GTX 1080 averages 2.12× over
//! the K80 and 1.56× over the M40 in this experiment).

use msg_match::partitioned::cta_plan;
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Device generation.
    pub generation: GpuGeneration,
    /// Number of queues.
    pub queues: usize,
    /// Total queue length across all queues.
    pub total_len: usize,
    /// Matching rate.
    pub matches_per_sec: f64,
    /// CTAs the launch plan needs.
    pub ctas: u32,
    /// Kernel launches (iterations) used.
    pub launches: u32,
}

/// Queue counts the paper's figure plots.
pub const DEFAULT_QUEUES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Total queue lengths swept.
pub const DEFAULT_LENS: [usize; 5] = [256, 1024, 2048, 4096, 8192];

/// Workload with sources spread uniformly so queues balance (the paper's
/// best case; feasibility of that assumption is Section VI-A's analysis).
/// Receives are posted in arrival order: the paper notes an *ordered*
/// queue sustains the single-batch rate across lengths, while a reversed
/// one degrades (covered by the `ablations` harness).
fn workload(total_len: usize, queues: usize, seed: u64) -> Workload {
    let mut w = WorkloadSpec {
        len: total_len,
        peers: (queues * 8) as u32, // several sources per queue
        tags: 1 << 12,
        seed,
        ..Default::default()
    }
    .generate();
    w.reqs = w
        .msgs
        .iter()
        .map(|m| RecvRequest::exact(m.src, m.tag, m.comm))
        .collect();
    w
}

/// Sizes of each queue under `src % queues` partitioning.
fn queue_sizes(w: &Workload, queues: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; queues];
    for m in &w.msgs {
        sizes[m.src as usize % queues] += 1;
    }
    sizes
}

/// Run the sweep for one generation.
pub fn run_generation(
    generation: GpuGeneration,
    queues: &[usize],
    lens: &[usize],
    seed: u64,
) -> Vec<Point> {
    let mut out = Vec::new();
    for &total_len in lens {
        for &q in queues {
            let w = workload(total_len, q, seed);
            let mut gpu = Gpu::new(generation);
            let r = PartitionedMatcher::new(q)
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
                .expect("workload has no wildcards");
            assert_eq!(r.matches as usize, total_len, "must fully match");
            out.push(Point {
                generation,
                queues: q,
                total_len,
                matches_per_sec: r.matches_per_sec,
                ctas: cta_plan(&queue_sizes(&w, q)),
                launches: r.launches,
            });
        }
    }
    out
}

/// The figure's main sweep (GTX 1080).
pub fn run(queues: &[usize], lens: &[usize], seed: u64) -> Vec<Point> {
    run_generation(GpuGeneration::PascalGtx1080, queues, lens, seed)
}

/// Mean speedup of `a` over `b` across matching (queues, len) points.
pub fn mean_speedup(a: &[Point], b: &[Point]) -> f64 {
    let mut ratios = Vec::new();
    for pa in a {
        if let Some(pb) = b
            .iter()
            .find(|p| p.queues == pa.queues && p.total_len == pa.total_len)
        {
            ratios.push(pa.matches_per_sec / pb.matches_per_sec);
        }
    }
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

/// Render the GTX 1080 sweep.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "Figure 5: partitioned matching rate [M matches/s] (CTAs), GTX 1080",
        &["total_len", "1q", "2q", "4q", "8q", "16q", "32q"],
    );
    let mut lens: Vec<usize> = points.iter().map(|p| p.total_len).collect();
    lens.sort_unstable();
    lens.dedup();
    for len in lens {
        let mut row = vec![len.to_string()];
        for q in DEFAULT_QUEUES {
            let cell = points
                .iter()
                .find(|p| p.total_len == len && p.queues == q)
                .map(|p| format!("{} ({})", fmt_mps(p.matches_per_sec), p.ctas))
                .unwrap_or_default();
            row.push(cell);
        }
        r.push(row);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_queues_scale_roughly_linearly_up_to_four() {
        let pts = run(&[1, 2, 4], &[1024], 3);
        let rate = |q: usize| {
            pts.iter()
                .find(|p| p.queues == q)
                .unwrap_or_else(|| panic!("sweep is missing the {q}-queue point"))
                .matches_per_sec
        };
        let s2 = rate(2) / rate(1);
        let s4 = rate(4) / rate(1);
        assert!(s2 > 1.5, "2 queues speedup {s2}");
        assert!(s4 > 3.0, "4 queues speedup {s4}");
    }

    #[test]
    fn sixteen_queues_near_sixty_m() {
        let pts = run(&[16], &[1024], 3);
        let r = pts[0].matches_per_sec;
        assert!(
            (40.0e6..90.0e6).contains(&r),
            "paper reports ≈60 M matches/s for well-partitioned queues, got {r}"
        );
    }

    #[test]
    fn generation_speedups_match_paper() {
        let q = [4usize, 16];
        let l = [1024usize];
        let p = run_generation(GpuGeneration::PascalGtx1080, &q, &l, 5);
        let k = run_generation(GpuGeneration::KeplerK80, &q, &l, 5);
        let m = run_generation(GpuGeneration::MaxwellM40, &q, &l, 5);
        let vs_k = mean_speedup(&p, &k);
        let vs_m = mean_speedup(&p, &m);
        // Paper: 2.12× over K80, 1.56× over M40.
        assert!((1.5..3.0).contains(&vs_k), "vs K80: {vs_k}");
        assert!((1.2..2.2).contains(&vs_m), "vs M40: {vs_m}");
    }

    #[test]
    fn cta_annotation_grows_with_length() {
        let pts = run(&[4], &[1024, 4096], 3);
        let point = |len: usize| {
            pts.iter()
                .find(|p| p.total_len == len)
                .unwrap_or_else(|| panic!("sweep is missing total_len {len}"))
        };
        let c1 = point(1024).ctas;
        let c4 = point(4096).ctas;
        assert!(c4 >= c1, "more total work needs at least as many CTAs");
    }
}
