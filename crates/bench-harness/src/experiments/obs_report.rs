//! Observability report: one traced service run, exported every way the
//! unified observability layer knows.
//!
//! Runs the sharded streaming service with tracing enabled and emits:
//!
//! * the span + causal-flow timeline as Chrome `trace_event` JSON (load
//!   in `ui.perfetto.dev` or `chrome://tracing`),
//! * the metrics snapshot as a Prometheus text exposition,
//! * the dual-clock wall profile: a second Prometheus exposition plus
//!   wall-clock tracks spliced into the same trace document,
//! * a human-readable stall-attribution table: where each shard's
//!   device cycles went, by stall class,
//! * five small [`gpu_msg::Domain`]-over-fabric flow demos, one per
//!   matching engine, so a single `FlowId` can be followed from the
//!   send through packetization to the kernel match.
//!
//! The virtual-clock artefacts are fully deterministic (simulated
//! clock, fixed seed), so they are byte-identical across runs — CI
//! leans on that. The wall-clock artefacts are measurements and are
//! kept strictly apart.

use bytes::Bytes;
use gpu_msg::{
    Domain, DomainConfig, MatcherKind, ServiceMetrics, ShardEnginePolicy, ShardedMatchService,
    ShardedServiceConfig, ShardedServiceReport, TransportConfig,
};
use msg_match::{RecvRequest, RelaxationConfig};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// Everything one traced run produces.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// The service outcome (aggregate + per-shard metrics).
    pub report: ShardedServiceReport,
    /// Chrome `trace_event` JSON timeline (virtual clock only —
    /// byte-deterministic).
    pub trace_json: String,
    /// Prometheus text exposition of the metrics snapshot (virtual
    /// clock only — byte-deterministic).
    pub exposition: String,
    /// Wall-clock scheduler tracks as a trace document of their own
    /// (empty when the run was untraced). Measured, NOT deterministic.
    pub wall_trace_json: String,
    /// Prometheus text exposition of the dual-clock scheduler profile.
    /// Measured, NOT deterministic.
    pub wall_prom: String,
}

/// Default configuration: a small mixed-communicator service under the
/// auto engine policy, so the timeline shows more than one engine when
/// the traffic allows it.
pub fn default_config() -> ShardedServiceConfig {
    ShardedServiceConfig {
        shards: 4,
        arrival_rate: 6.0e6,
        comms: 2,
        duration: 0.002,
        policy: ShardEnginePolicy::Auto(RelaxationConfig::UNORDERED),
        trace: true,
        ..Default::default()
    }
}

/// Run the traced service and collect all the artefacts.
pub fn run(mut cfg: ShardedServiceConfig) -> ObsArtifacts {
    cfg.trace = true;
    let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg);
    let report = svc.run();
    let trace_json = svc
        .trace_json()
        .expect("tracing is forced on for the obs report");
    let exposition = report.metrics.to_prometheus();
    let wall_trace_json = svc.wall_trace_json().unwrap_or_default();
    let wall_prom = report.scheduler_profile.to_prometheus();
    ObsArtifacts {
        report,
        trace_json,
        exposition,
        wall_trace_json,
        wall_prom,
    }
}

/// One engine's causal-flow demonstration trace.
#[derive(Debug, Clone)]
pub struct FlowDemo {
    /// Engine label (matches the matcher the domain ran).
    pub label: &'static str,
    /// Merged endpoint + fabric-link trace document for this demo.
    pub trace_json: String,
}

/// Run one tiny [`Domain`] per matching engine over a traced fabric
/// with flow sampling at 1-in-1, so the exported trace carries a
/// complete admission → packetize → delivery → match arrow chain for
/// every message. Track ids are offset per demo so the documents can
/// be [`obs::perfetto::merge`]d with the service trace.
pub fn flow_demos(seed: u64) -> Vec<FlowDemo> {
    let engines: [(&'static str, MatcherKind, RelaxationConfig, bool); 5] = [
        (
            "matrix",
            MatcherKind::Matrix,
            RelaxationConfig::FULL_MPI,
            false,
        ),
        (
            "partitioned x4",
            MatcherKind::Partitioned(4),
            RelaxationConfig::NO_WILDCARDS,
            false,
        ),
        (
            "partitioned x16",
            MatcherKind::Partitioned(16),
            RelaxationConfig::NO_WILDCARDS,
            false,
        ),
        (
            "hash",
            MatcherKind::Hash,
            RelaxationConfig::UNORDERED,
            false,
        ),
        (
            "hash+reorder",
            MatcherKind::Hash,
            RelaxationConfig::UNORDERED,
            true,
        ),
    ];
    let ranks = 4u32;
    engines
        .iter()
        .enumerate()
        .map(|(i, &(label, matcher, relax, restore_order))| {
            // Demo 0 shares no tracks with the service trace either:
            // service shard/coordinator/wall ids live below the
            // endpoint/fabric windows of instance 0.
            let base = obs::tracks::instance_base(i);
            let mut fc = fabric::FabricConfig {
                trace: true,
                trace_track_base: base,
                seed: seed.wrapping_add(i as u64),
                ..Default::default()
            };
            if restore_order {
                fc.order = fabric::DeliveryOrder::Unordered;
            }
            let mut cfg = DomainConfig::new(ranks, GpuGeneration::PascalGtx1080, matcher, relax);
            cfg.transport = TransportConfig::Fabric(fc);
            cfg.restore_order = restore_order;
            cfg.trace = true;
            cfg.flow_sample_every = 1;
            cfg.trace_track_base = base;
            let node = Domain::with_config(cfg);
            // Each rank sends a ring neighbourly burst: three eager
            // messages and one large enough to negotiate rendezvous and
            // fragment across several packets.
            for src in 0..ranks {
                let dst = (src + 1) % ranks;
                for k in 0..3u32 {
                    node.send(src, dst, 100 + k, 0, Bytes::from(vec![k as u8; 64]));
                }
                node.send(src, dst, 103, 0, Bytes::from(vec![src as u8; 4096]));
            }
            for dst in 0..ranks {
                let src = (dst + ranks - 1) % ranks;
                for k in 0..4u32 {
                    node.recv_blocking(dst, RecvRequest::exact(src, 100 + k, 0), 4096)
                        .unwrap_or_else(|e| panic!("{label} demo recv failed: {e}"));
                }
            }
            let endpoints = node
                .endpoint_trace_json()
                .expect("domain tracing was enabled");
            let links = node
                .transport_trace_json()
                .expect("fabric tracing was enabled");
            FlowDemo {
                label,
                trace_json: obs::perfetto::merge(&[&endpoints, &links]),
            }
        })
        .collect()
}

/// Splice the service trace, the wall-clock tracks and the flow demos
/// into the single `OBS_trace.json` document.
pub fn merged_trace(artefacts: &ObsArtifacts, demos: &[FlowDemo]) -> String {
    let mut docs: Vec<&str> = vec![&artefacts.trace_json, &artefacts.wall_trace_json];
    docs.extend(demos.iter().map(|d| d.trace_json.as_str()));
    obs::perfetto::merge(&docs)
}

/// Stall-attribution table: per shard, the percentage of device cycles
/// attributed to each stall class (rows sum to 100 by construction —
/// the classes partition the cycle count).
pub fn stall_table(m: &ServiceMetrics) -> Report {
    let mut r = Report::new(
        "Stall attribution: where each shard's device cycles went",
        &[
            "shard",
            "engine",
            "launches",
            "cycles",
            "issue_%",
            "mem_dep_%",
            "barrier_%",
            "occ_wait_%",
            "pipe_%",
        ],
    );
    for s in &m.shards {
        let total = s.profile.cycles.max(1) as f64;
        let pct = |v: u64| format!("{:.1}", v as f64 * 100.0 / total);
        r.push(vec![
            s.shard.to_string(),
            s.engine.clone(),
            s.profile.launches.to_string(),
            s.profile.cycles.to_string(),
            pct(s.profile.stall_issue),
            pct(s.profile.stall_mem_dependency),
            pct(s.profile.stall_barrier),
            pct(s.profile.stall_occupancy_wait),
            pct(s.profile.stall_pipe_contention),
        ]);
    }
    r
}

/// Count the `trace_event` entries in an exported trace document.
///
/// # Errors
/// The document must parse as JSON with a `traceEvents` array.
pub fn trace_event_count(trace_json: &str) -> Result<usize, String> {
    let tree = serde::json::parse_value(trace_json).map_err(|e| format!("bad trace JSON: {e}"))?;
    let serde::Value::Object(fields) = &tree else {
        return Err("trace document must be a JSON object".to_string());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k.as_str() == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("trace document must have a traceEvents field")?;
    match events {
        serde::Value::Array(evs) => Ok(evs.len()),
        _ => Err("traceEvents must be an array".to_string()),
    }
}

/// Read a numeric JSON field as `f64`.
fn num(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::U64(n) => Some(*n as f64),
        serde::Value::I64(n) => Some(*n as f64),
        serde::Value::F64(f) => Some(*f),
        _ => None,
    }
}

fn field_num(v: &serde::Value, path: &[&str]) -> Result<f64, String> {
    let mut cur = v;
    for p in path {
        cur = cur
            .field(p)
            .map_err(|e| format!("missing {}: {e}", path.join(".")))?;
    }
    num(cur).ok_or_else(|| format!("{} is not numeric", path.join(".")))
}

fn field_bool(v: &serde::Value, path: &[&str]) -> Result<bool, String> {
    let mut cur = v;
    for p in path {
        cur = cur
            .field(p)
            .map_err(|e| format!("missing {}: {e}", path.join(".")))?;
    }
    match cur {
        serde::Value::Bool(b) => Ok(*b),
        _ => Err(format!("{} is not a bool", path.join("."))),
    }
}

/// Maximum tolerated goodput regression against the committed baseline.
pub const GOODPUT_DROP_TOLERANCE: f64 = 0.10;

/// Maximum tolerated relative rise of a barrier-stall fraction against
/// the committed baseline (plus one absolute point of slack, so
/// near-zero baselines don't trip on noise-sized drifts).
pub const BARRIER_STALL_RISE_TOLERANCE: f64 = 0.20;

/// The bench-regression gate behind `obs_report --check`: diff the
/// wall-clock-independent goodput and stall-attribution sections of
/// `BENCH_service.json` / `BENCH_recovery.json` / `BENCH_tenancy.json`
/// / `BENCH_chaos.json` against the committed baseline
/// (`docs/bench_baseline.json`).
/// Returns one message per regression; an empty vector passes the gate.
///
/// The benches are pure simulation at a fixed seed, so the compared
/// numbers are deterministic — the tolerances exist to let intentional
/// performance work move them without a lockstep baseline edit. The
/// tenancy isolation and resharding fields are *invariants*, not
/// measurements, so they get no tolerance at all: any guaranteed-tenant
/// loss, failed byte-equality or scheduler divergence is a regression.
/// The chaos sweep is held the same way: its violation count is pinned
/// to the baseline ceiling (zero), and each fault class it claims to
/// compose must actually have landed — a sweep that stops injecting is
/// a regression even though it "passes".
///
/// # Errors
/// Malformed or structurally incomplete artefacts fail loudly rather
/// than passing silently.
pub fn check_regressions(
    baseline: &serde::Value,
    service: &serde::Value,
    recovery: &serde::Value,
    tenancy: &serde::Value,
    chaos: &serde::Value,
) -> Result<Vec<String>, String> {
    let mut regressions = Vec::new();
    let base_service = baseline.field("service").map_err(|e| e.to_string())?;
    let serde::Value::Object(policies) = base_service else {
        return Err("baseline service section must be an object".to_string());
    };
    for (key, expect) in policies {
        let base_rate = field_num(expect, &["sustained_rate"])?;
        let base_frac = field_num(expect, &["barrier_stall_fraction"])?;
        let got_rate = field_num(service, &[key, "sustained_rate"])?;
        let got_frac = field_num(
            service,
            &["stall_attribution", key, "barrier_stall_fraction"],
        )?;
        if got_rate < base_rate * (1.0 - GOODPUT_DROP_TOLERANCE) {
            regressions.push(format!(
                "service {key}: sustained rate {got_rate:.0} msgs/s is more than \
                 {:.0}% below the baseline {base_rate:.0}",
                GOODPUT_DROP_TOLERANCE * 100.0
            ));
        }
        if got_frac > base_frac * (1.0 + BARRIER_STALL_RISE_TOLERANCE) + 0.01 {
            regressions.push(format!(
                "service {key}: barrier-stall fraction {got_frac:.4} is more than \
                 {:.0}% above the baseline {base_frac:.4}",
                BARRIER_STALL_RISE_TOLERANCE * 100.0
            ));
        }
    }

    // The pre-filter headline: the cycle speedup of screening the
    // deepest, most-unexpected grid point gets the usual drop
    // tolerance; the memory-dependency-stall claim is an invariant — a
    // screen that stops cutting mem stalls on unexpected-heavy traffic
    // has lost the property it exists for.
    let base_pref = baseline.field("prefilter").map_err(|e| e.to_string())?;
    let base_speedup = field_num(base_pref, &["headline_cycle_speedup"])?;
    let got_speedup = field_num(service, &["prefilter", "headline", "cycle_speedup"])?;
    if got_speedup < base_speedup * (1.0 - GOODPUT_DROP_TOLERANCE) {
        regressions.push(format!(
            "prefilter: headline cycle speedup {got_speedup:.3}x is more than {:.0}% \
             below the baseline {base_speedup:.3}x",
            GOODPUT_DROP_TOLERANCE * 100.0
        ));
    }
    let stall_full = field_num(
        service,
        &["prefilter", "headline", "mem_dependency_stall_full"],
    )?;
    let stall_screened = field_num(
        service,
        &["prefilter", "headline", "mem_dependency_stall_screened"],
    )?;
    if stall_screened >= stall_full {
        regressions.push(format!(
            "prefilter: screening no longer reduces memory-dependency stalls at the \
             headline point ({stall_screened:.0} >= {stall_full:.0})"
        ));
    }
    if field_num(service, &["prefilter", "headline", "rejected_total"])? == 0.0 {
        regressions.push(
            "prefilter: the headline point rejected nothing — the sweep lost its teeth".to_string(),
        );
    }

    let base_rec = baseline.field("recovery").map_err(|e| e.to_string())?;
    let base_rate = field_num(base_rec, &["baseline_sustained_rate"])?;
    let got_rate = field_num(recovery, &["baseline_sustained_rate"])?;
    if got_rate < base_rate * (1.0 - GOODPUT_DROP_TOLERANCE) {
        regressions.push(format!(
            "recovery: crash-free sustained rate {got_rate:.0} msgs/s is more than \
             {:.0}% below the baseline {base_rate:.0}",
            GOODPUT_DROP_TOLERANCE * 100.0
        ));
    }
    let base_frac = field_num(base_rec, &["baseline_barrier_stall_fraction"])?;
    let got_frac = field_num(recovery, &["baseline_barrier_stall_fraction"])?;
    if got_frac > base_frac * (1.0 + BARRIER_STALL_RISE_TOLERANCE) + 0.01 {
        regressions.push(format!(
            "recovery: barrier-stall fraction {got_frac:.4} is more than {:.0}% above \
             the baseline {base_frac:.4}",
            BARRIER_STALL_RISE_TOLERANCE * 100.0
        ));
    }
    let base_goodput = field_num(base_rec, &["crash_free_goodput_retained"])?;
    let points = recovery.field("points").map_err(|e| e.to_string())?;
    let serde::Value::Array(points) = points else {
        return Err("recovery points must be an array".to_string());
    };
    let crash_free = points
        .iter()
        .find(|p| {
            field_num(p, &["crash_rate"])
                .map(|r| r == 0.0)
                .unwrap_or(false)
        })
        .ok_or("recovery artefact has no crash-free point")?;
    let got_goodput = field_num(crash_free, &["goodput_retained"])?;
    if got_goodput < base_goodput * (1.0 - GOODPUT_DROP_TOLERANCE) {
        regressions.push(format!(
            "recovery: crash-free goodput retained {got_goodput:.4} is more than \
             {:.0}% below the baseline {base_goodput:.4}",
            GOODPUT_DROP_TOLERANCE * 100.0
        ));
    }

    let base_ten = baseline.field("tenancy").map_err(|e| e.to_string())?;
    let base_rate = field_num(base_ten, &["headline_sustained_rate"])?;
    let got_rate = field_num(tenancy, &["headline_sustained_rate"])?;
    if got_rate < base_rate * (1.0 - GOODPUT_DROP_TOLERANCE) {
        regressions.push(format!(
            "tenancy: headline sustained rate {got_rate:.0} msgs/s is more than \
             {:.0}% below the baseline {base_rate:.0}",
            GOODPUT_DROP_TOLERANCE * 100.0
        ));
    }
    for sched in ["global_clock", "thread_per_shard"] {
        let shed = field_num(tenancy, &["isolation", sched, "guaranteed_shed"])?;
        let spilled = field_num(tenancy, &["isolation", sched, "guaranteed_spilled"])?;
        if shed != 0.0 || spilled != 0.0 {
            regressions.push(format!(
                "tenancy: {sched} isolation broken — guaranteed tenant shed {shed:.0} / \
                 spilled {spilled:.0} under a saturating best-effort aggressor"
            ));
        }
        if field_num(tenancy, &["isolation", sched, "aggressor_shed"])? == 0.0 {
            regressions.push(format!(
                "tenancy: {sched} isolation scenario lost its teeth — the best-effort \
                 aggressor was never shed, so the guarantee was not exercised"
            ));
        }
        if field_num(tenancy, &["resharding", sched, "migrations"])? < 1.0 {
            regressions.push(format!(
                "tenancy: {sched} resharding scenario lost its teeth — the skew no \
                 longer triggers a migration"
            ));
        }
        if !field_bool(tenancy, &["resharding", sched, "completions_match_static"])? {
            regressions.push(format!(
                "tenancy: {sched} live resharding diverged from the static run with \
                 the final placement — migration is no longer exactly-once"
            ));
        }
    }
    for section in ["isolation", "resharding"] {
        if !field_bool(tenancy, &[section, "schedulers_byte_identical"])? {
            regressions.push(format!(
                "tenancy: {section} artefacts differ between GlobalClock and \
                 ThreadPerShard — scheduler independence is broken"
            ));
        }
    }

    // The chaos sweep: end-to-end invariants hold at the baseline
    // ceiling (zero — no tolerance), and the sweep keeps its teeth:
    // every composed fault class must have landed at least once across
    // the points, or the zero-violation verdict is vacuous.
    let base_chaos = baseline.field("chaos").map_err(|e| e.to_string())?;
    let max_violations = field_num(base_chaos, &["max_violations"])?;
    let got_violations = field_num(chaos, &["total_violations"])?;
    if got_violations > max_violations {
        regressions.push(format!(
            "chaos: {got_violations:.0} end-to-end invariant violation(s) — the \
             baseline ceiling is {max_violations:.0}"
        ));
    }
    let points = chaos.field("points").map_err(|e| e.to_string())?;
    let serde::Value::Array(points) = points else {
        return Err("chaos points must be an array".to_string());
    };
    for (column, label) in [
        ("crashes", "shard crash"),
        ("hangs", "shard hang"),
        ("partitions", "shard partition"),
        ("corrupt_checkpoints", "checkpoint corruption"),
        ("migrations", "live migration"),
        ("fabric_corruptions", "wire corruption"),
        ("fabric_link_downs", "link-down notice"),
    ] {
        let mut landed = 0.0;
        for p in points {
            landed += field_num(p, &[column])?;
        }
        if landed == 0.0 {
            regressions.push(format!(
                "chaos: sweep lost its teeth — no {label} landed at any point"
            ));
        }
    }
    Ok(regressions)
}

/// Wall-clock matches/s measured over one service run.
fn wall_rate(cfg: ShardedServiceConfig) -> f64 {
    let report = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg).run();
    let wall = report.wall_seconds.max(1e-9);
    report.metrics.total_matched as f64 / wall
}

/// Measure the wall-clock cost of flow tracing at the default 1-in-64
/// sampling: a discarded warmup pair, then `runs` traced/untraced
/// pairs run back to back. Returns the `(traced, untraced)` rates of
/// the **best pair** — the pair whose traced/untraced ratio is highest
/// — in wall matches/s; the caller asserts that ratio stays within the
/// tolerated slowdown.
///
/// Best-pair (not medians of independent samples) because timing noise
/// on a millisecond-scale run is one-sided and bursty: preemption and
/// frequency ramps only ever slow a run down, and they last longer
/// than one run. The two runs of a pair execute adjacently and so
/// share machine conditions; a systematic tracing cost depresses the
/// ratio of *every* pair, while a noise burst hitting one side of some
/// pairs leaves at least one clean pair to report.
pub fn tracing_overhead(runs: usize, duration: f64) -> (f64, f64) {
    let base = ShardedServiceConfig {
        duration,
        ..default_config()
    };
    let traced_cfg = ShardedServiceConfig {
        trace: true,
        flow_sample_every: 64,
        ..base
    };
    let untraced_cfg = ShardedServiceConfig {
        trace: false,
        ..base
    };
    wall_rate(traced_cfg);
    wall_rate(untraced_cfg);
    let mut best = (0.0f64, f64::INFINITY);
    for _ in 0..runs.max(1) {
        let pair = (wall_rate(traced_cfg), wall_rate(untraced_cfg));
        if pair.0 * best.1 > best.0 * pair.1 {
            best = pair;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ObsArtifacts {
        run(ShardedServiceConfig {
            shards: 2,
            arrival_rate: 2.0e6,
            duration: 0.001,
            ..default_config()
        })
    }

    #[test]
    fn artefacts_parse_and_are_populated() {
        let a = small();
        let n = trace_event_count(&a.trace_json).expect("trace must parse");
        assert!(n > 0, "trace must hold events");
        for family in [
            "service_matched_total",
            "shard_stall_cycles_total",
            "shard_match_latency_seconds_bucket",
        ] {
            assert!(a.exposition.contains(family), "missing {family}");
        }
        assert!(a.report.metrics.total_matched > 0);
    }

    #[test]
    fn stall_table_has_one_row_per_shard_and_percentages_sum() {
        let a = small();
        let t = stall_table(&a.report.metrics);
        assert_eq!(t.rows.len(), a.report.metrics.shards.len());
        for row in &t.rows {
            let sum: f64 = row[4..]
                .iter()
                .map(|c| c.parse::<f64>().expect("percentage cell"))
                .sum();
            assert!(
                (sum - 100.0).abs() < 0.5,
                "stall percentages must partition the cycles: {row:?}"
            );
        }
    }

    #[test]
    fn artefacts_are_deterministic() {
        // Only the virtual-clock artefacts: wall_trace_json and
        // wall_prom are measurements and legitimately vary per run.
        let (a, b) = (small(), small());
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.exposition, b.exposition);
    }

    #[test]
    fn wall_artefacts_are_populated_and_separate() {
        let a = small();
        assert!(
            a.wall_trace_json.contains("wall shard"),
            "wall tracks must be exported when tracing is on"
        );
        for family in [
            "scheduler_wall_seconds",
            "scheduler_shard_epochs_total",
            "scheduler_shard_bucket_ns_total",
        ] {
            assert!(a.wall_prom.contains(family), "missing {family}");
        }
        assert!(
            !a.exposition.contains("scheduler_shard_bucket_ns_total"),
            "wall families must stay out of the deterministic exposition"
        );
    }

    #[test]
    fn flow_demos_cover_five_engines_and_merge_with_the_service_trace() {
        let a = small();
        let demos = flow_demos(7);
        assert_eq!(demos.len(), 5);
        for d in &demos {
            for marker in ["\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\""] {
                assert!(
                    d.trace_json.contains(marker),
                    "{}: flow chain must carry {marker}",
                    d.label
                );
            }
            for point in ["send", "packetize", "delivered", "deposit", "matched"] {
                assert!(
                    d.trace_json.contains(&format!("\"name\":\"{point}\"")),
                    "{}: missing flow point {point}",
                    d.label
                );
            }
        }
        let merged = merged_trace(&a, &demos);
        let n = trace_event_count(&merged).expect("merged trace must stay valid JSON");
        let service_n = trace_event_count(&a.trace_json).unwrap();
        assert!(n > service_n, "merge must add the demo and wall events");
    }

    fn baseline_value(rate: f64, frac: f64, goodput: f64) -> serde::Value {
        use serde::Value as V;
        V::Object(vec![
            (
                "service".to_string(),
                V::Object(vec![(
                    "matrix@8shards".to_string(),
                    V::Object(vec![
                        ("sustained_rate".to_string(), V::F64(rate)),
                        ("barrier_stall_fraction".to_string(), V::F64(frac)),
                    ]),
                )]),
            ),
            (
                "recovery".to_string(),
                V::Object(vec![
                    ("baseline_sustained_rate".to_string(), V::F64(rate)),
                    ("baseline_barrier_stall_fraction".to_string(), V::F64(frac)),
                    ("crash_free_goodput_retained".to_string(), V::F64(goodput)),
                ]),
            ),
            (
                "tenancy".to_string(),
                V::Object(vec![("headline_sustained_rate".to_string(), V::F64(rate))]),
            ),
            (
                "prefilter".to_string(),
                V::Object(vec![("headline_cycle_speedup".to_string(), V::F64(3.0))]),
            ),
            (
                "chaos".to_string(),
                V::Object(vec![("max_violations".to_string(), V::F64(0.0))]),
            ),
        ])
    }

    /// A `BENCH_chaos.json`-shaped value: every fault class landed
    /// unless `toothless`, with the given violation total.
    fn chaos_value(violations: f64, toothless: bool) -> serde::Value {
        use serde::Value as V;
        let landed = if toothless { 0.0 } else { 2.0 };
        let point = V::Object(vec![
            ("crashes".to_string(), V::F64(landed)),
            ("hangs".to_string(), V::F64(landed)),
            ("partitions".to_string(), V::F64(landed)),
            ("corrupt_checkpoints".to_string(), V::F64(landed)),
            ("migrations".to_string(), V::F64(landed)),
            ("fabric_corruptions".to_string(), V::F64(landed)),
            ("fabric_link_downs".to_string(), V::F64(landed)),
        ]);
        V::Object(vec![
            ("total_violations".to_string(), V::F64(violations)),
            ("points".to_string(), V::Array(vec![point])),
        ])
    }

    /// A healthy (or deliberately broken) `prefilter` service section.
    fn prefilter_value(speedup: f64, stall_full: f64, stall_screened: f64) -> serde::Value {
        use serde::Value as V;
        V::Object(vec![(
            "headline".to_string(),
            V::Object(vec![
                ("cycle_speedup".to_string(), V::F64(speedup)),
                ("mem_dependency_stall_full".to_string(), V::F64(stall_full)),
                (
                    "mem_dependency_stall_screened".to_string(),
                    V::F64(stall_screened),
                ),
                ("rejected_total".to_string(), V::F64(64.0)),
            ]),
        )])
    }

    /// A `BENCH_tenancy.json`-shaped value with healthy invariants
    /// unless overridden by the arguments.
    fn tenancy_value(rate: f64, guaranteed_shed: f64, matches_static: bool) -> serde::Value {
        use serde::Value as V;
        let iso = |shed: f64| {
            V::Object(vec![
                ("guaranteed_shed".to_string(), V::F64(shed)),
                ("guaranteed_spilled".to_string(), V::F64(0.0)),
                ("aggressor_shed".to_string(), V::F64(1000.0)),
            ])
        };
        let reshard = |ok: bool| {
            V::Object(vec![
                ("migrations".to_string(), V::F64(1.0)),
                ("completions_match_static".to_string(), V::Bool(ok)),
            ])
        };
        V::Object(vec![
            ("headline_sustained_rate".to_string(), V::F64(rate)),
            (
                "isolation".to_string(),
                V::Object(vec![
                    ("global_clock".to_string(), iso(guaranteed_shed)),
                    ("thread_per_shard".to_string(), iso(0.0)),
                    ("schedulers_byte_identical".to_string(), V::Bool(true)),
                ]),
            ),
            (
                "resharding".to_string(),
                V::Object(vec![
                    ("global_clock".to_string(), reshard(matches_static)),
                    ("thread_per_shard".to_string(), reshard(true)),
                    ("schedulers_byte_identical".to_string(), V::Bool(true)),
                ]),
            ),
        ])
    }

    fn artefacts_value(rate: f64, frac: f64, goodput: f64) -> (serde::Value, serde::Value) {
        use serde::Value as V;
        let service = V::Object(vec![
            (
                "matrix@8shards".to_string(),
                V::Object(vec![("sustained_rate".to_string(), V::F64(rate))]),
            ),
            (
                "stall_attribution".to_string(),
                V::Object(vec![(
                    "matrix@8shards".to_string(),
                    V::Object(vec![("barrier_stall_fraction".to_string(), V::F64(frac))]),
                )]),
            ),
            (
                "prefilter".to_string(),
                prefilter_value(3.0, 10_000.0, 2_000.0),
            ),
        ]);
        let recovery = V::Object(vec![
            ("baseline_sustained_rate".to_string(), V::F64(rate)),
            ("baseline_barrier_stall_fraction".to_string(), V::F64(frac)),
            (
                "points".to_string(),
                V::Array(vec![V::Object(vec![
                    ("crash_rate".to_string(), V::F64(0.0)),
                    ("goodput_retained".to_string(), V::F64(goodput)),
                ])]),
            ),
        ]);
        (service, recovery)
    }

    #[test]
    fn regression_gate_passes_matching_artefacts_and_catches_drops() {
        let baseline = baseline_value(8.0e6, 0.30, 0.99);
        let tenancy = tenancy_value(8.0e6, 0.0, true);
        let chaos = chaos_value(0.0, false);
        let (service, recovery) = artefacts_value(8.0e6, 0.30, 0.99);
        let ok = check_regressions(&baseline, &service, &recovery, &tenancy, &chaos)
            .expect("well-formed");
        assert!(ok.is_empty(), "identical numbers must pass: {ok:?}");

        // An 11% goodput drop and a 25% barrier-stall rise both trip.
        let (service, recovery) = artefacts_value(8.0e6 * 0.89, 0.30 * 1.25 + 0.02, 0.99);
        let bad = check_regressions(&baseline, &service, &recovery, &tenancy, &chaos)
            .expect("well-formed");
        assert!(
            bad.iter().any(|m| m.contains("sustained rate")),
            "goodput drop must be reported: {bad:?}"
        );
        assert!(
            bad.iter().any(|m| m.contains("barrier-stall")),
            "stall rise must be reported: {bad:?}"
        );

        // A malformed artefact errors instead of passing silently.
        let empty = serde::Value::Object(vec![]);
        assert!(check_regressions(&baseline, &empty, &empty, &tenancy, &chaos).is_err());
        assert!(check_regressions(&baseline, &service, &recovery, &empty, &chaos).is_err());
        assert!(check_regressions(&baseline, &service, &recovery, &tenancy, &empty).is_err());
    }

    #[test]
    fn regression_gate_holds_the_tenancy_invariants_without_tolerance() {
        let baseline = baseline_value(8.0e6, 0.30, 0.99);
        let chaos = chaos_value(0.0, false);
        let (service, recovery) = artefacts_value(8.0e6, 0.30, 0.99);

        // Even one shed guaranteed message is a regression.
        let bad = tenancy_value(8.0e6, 1.0, true);
        let msgs =
            check_regressions(&baseline, &service, &recovery, &bad, &chaos).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("isolation broken")),
            "guaranteed loss must be reported: {msgs:?}"
        );

        // A live/static divergence is a regression at any magnitude.
        let bad = tenancy_value(8.0e6, 0.0, false);
        let msgs =
            check_regressions(&baseline, &service, &recovery, &bad, &chaos).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("exactly-once")),
            "byte-equality failure must be reported: {msgs:?}"
        );

        // A headline rate drop uses the shared goodput tolerance.
        let bad = tenancy_value(8.0e6 * 0.89, 0.0, true);
        let msgs =
            check_regressions(&baseline, &service, &recovery, &bad, &chaos).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("headline sustained rate")),
            "headline drop must be reported: {msgs:?}"
        );
    }

    #[test]
    fn regression_gate_pins_chaos_violations_and_teeth() {
        let baseline = baseline_value(8.0e6, 0.30, 0.99);
        let tenancy = tenancy_value(8.0e6, 0.0, true);
        let (service, recovery) = artefacts_value(8.0e6, 0.30, 0.99);

        // A single end-to-end violation trips the gate — no tolerance.
        let bad = chaos_value(1.0, false);
        let msgs =
            check_regressions(&baseline, &service, &recovery, &tenancy, &bad).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("invariant violation")),
            "chaos violations must be reported: {msgs:?}"
        );

        // Zero violations with zero injected faults is vacuous: every
        // missing fault class is reported by name.
        let bad = chaos_value(0.0, true);
        let msgs =
            check_regressions(&baseline, &service, &recovery, &tenancy, &bad).expect("well-formed");
        for label in [
            "shard crash",
            "shard hang",
            "shard partition",
            "checkpoint corruption",
            "live migration",
            "wire corruption",
            "link-down notice",
        ] {
            assert!(
                msgs.iter().any(|m| m.contains(label)),
                "missing {label} teeth must be reported: {msgs:?}"
            );
        }

        // A point missing a teeth column errors instead of passing.
        let truncated = serde::Value::Object(vec![
            ("total_violations".to_string(), serde::Value::F64(0.0)),
            (
                "points".to_string(),
                serde::Value::Array(vec![serde::Value::Object(vec![])]),
            ),
        ]);
        assert!(check_regressions(&baseline, &service, &recovery, &tenancy, &truncated).is_err());
    }

    #[test]
    fn regression_gate_watches_the_prefilter_headline() {
        use serde::Value as V;
        let baseline = baseline_value(8.0e6, 0.30, 0.99);
        let tenancy = tenancy_value(8.0e6, 0.0, true);
        let chaos = chaos_value(0.0, false);
        let (healthy, recovery) = artefacts_value(8.0e6, 0.30, 0.99);

        let with_prefilter = |pref: serde::Value| {
            let V::Object(mut entries) = healthy.clone() else {
                unreachable!()
            };
            entries.retain(|(k, _)| k != "prefilter");
            entries.push(("prefilter".to_string(), pref));
            V::Object(entries)
        };

        // An 11% speedup drop trips the shared goodput tolerance.
        let bad = with_prefilter(prefilter_value(3.0 * 0.89, 10_000.0, 2_000.0));
        let msgs =
            check_regressions(&baseline, &bad, &recovery, &tenancy, &chaos).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("cycle speedup")),
            "speedup drop must be reported: {msgs:?}"
        );

        // Screening that stops cutting mem stalls is an invariant break.
        let bad = with_prefilter(prefilter_value(3.0, 2_000.0, 2_000.0));
        let msgs =
            check_regressions(&baseline, &bad, &recovery, &tenancy, &chaos).expect("well-formed");
        assert!(
            msgs.iter().any(|m| m.contains("memory-dependency")),
            "stall invariant must be reported: {msgs:?}"
        );
    }

    #[test]
    fn tracing_overhead_returns_positive_rates() {
        let (traced, untraced) = tracing_overhead(1, 0.0005);
        assert!(traced > 0.0 && untraced > 0.0);
    }
}
