//! Observability report: one traced service run, exported three ways.
//!
//! Runs the sharded streaming service with tracing enabled and emits
//! every consumer of the unified observability layer at once:
//!
//! * the span timeline as Chrome `trace_event` JSON (load in
//!   `ui.perfetto.dev` or `chrome://tracing`),
//! * the metrics snapshot as a Prometheus text exposition,
//! * a human-readable stall-attribution table: where each shard's
//!   device cycles went, by stall class.
//!
//! The run is fully deterministic (simulated clock, fixed seed), so the
//! artefacts are byte-identical across runs — CI leans on that.

use gpu_msg::{
    ServiceMetrics, ShardEnginePolicy, ShardedMatchService, ShardedServiceConfig,
    ShardedServiceReport,
};
use msg_match::RelaxationConfig;
use simt_sim::GpuGeneration;

use crate::table::Report;

/// Everything one traced run produces.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// The service outcome (aggregate + per-shard metrics).
    pub report: ShardedServiceReport,
    /// Chrome `trace_event` JSON timeline.
    pub trace_json: String,
    /// Prometheus text exposition of the metrics snapshot.
    pub exposition: String,
}

/// Default configuration: a small mixed-communicator service under the
/// auto engine policy, so the timeline shows more than one engine when
/// the traffic allows it.
pub fn default_config() -> ShardedServiceConfig {
    ShardedServiceConfig {
        shards: 4,
        arrival_rate: 6.0e6,
        comms: 2,
        duration: 0.002,
        policy: ShardEnginePolicy::Auto(RelaxationConfig::UNORDERED),
        trace: true,
        ..Default::default()
    }
}

/// Run the traced service and collect all three artefacts.
pub fn run(mut cfg: ShardedServiceConfig) -> ObsArtifacts {
    cfg.trace = true;
    let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg);
    let report = svc.run();
    let trace_json = svc
        .trace_json()
        .expect("tracing is forced on for the obs report");
    let exposition = report.metrics.to_prometheus();
    ObsArtifacts {
        report,
        trace_json,
        exposition,
    }
}

/// Stall-attribution table: per shard, the percentage of device cycles
/// attributed to each stall class (rows sum to 100 by construction —
/// the classes partition the cycle count).
pub fn stall_table(m: &ServiceMetrics) -> Report {
    let mut r = Report::new(
        "Stall attribution: where each shard's device cycles went",
        &[
            "shard",
            "engine",
            "launches",
            "cycles",
            "issue_%",
            "mem_dep_%",
            "barrier_%",
            "occ_wait_%",
            "pipe_%",
        ],
    );
    for s in &m.shards {
        let total = s.profile.cycles.max(1) as f64;
        let pct = |v: u64| format!("{:.1}", v as f64 * 100.0 / total);
        r.push(vec![
            s.shard.to_string(),
            s.engine.clone(),
            s.profile.launches.to_string(),
            s.profile.cycles.to_string(),
            pct(s.profile.stall_issue),
            pct(s.profile.stall_mem_dependency),
            pct(s.profile.stall_barrier),
            pct(s.profile.stall_occupancy_wait),
            pct(s.profile.stall_pipe_contention),
        ]);
    }
    r
}

/// Count the `trace_event` entries in an exported trace document.
///
/// # Errors
/// The document must parse as JSON with a `traceEvents` array.
pub fn trace_event_count(trace_json: &str) -> Result<usize, String> {
    let tree = serde::json::parse_value(trace_json).map_err(|e| format!("bad trace JSON: {e}"))?;
    let serde::Value::Object(fields) = &tree else {
        return Err("trace document must be a JSON object".to_string());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k.as_str() == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("trace document must have a traceEvents field")?;
    match events {
        serde::Value::Array(evs) => Ok(evs.len()),
        _ => Err("traceEvents must be an array".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ObsArtifacts {
        run(ShardedServiceConfig {
            shards: 2,
            arrival_rate: 2.0e6,
            duration: 0.001,
            ..default_config()
        })
    }

    #[test]
    fn artefacts_parse_and_are_populated() {
        let a = small();
        let n = trace_event_count(&a.trace_json).expect("trace must parse");
        assert!(n > 0, "trace must hold events");
        for family in [
            "service_matched_total",
            "shard_stall_cycles_total",
            "shard_match_latency_seconds_bucket",
        ] {
            assert!(a.exposition.contains(family), "missing {family}");
        }
        assert!(a.report.metrics.total_matched > 0);
    }

    #[test]
    fn stall_table_has_one_row_per_shard_and_percentages_sum() {
        let a = small();
        let t = stall_table(&a.report.metrics);
        assert_eq!(t.rows.len(), a.report.metrics.shards.len());
        for row in &t.rows {
            let sum: f64 = row[4..]
                .iter()
                .map(|c| c.parse::<f64>().expect("percentage cell"))
                .sum();
            assert!(
                (sum - 100.0).abs() < 0.5,
                "stall percentages must partition the cycles: {row:?}"
            );
        }
    }

    #[test]
    fn artefacts_are_deterministic() {
        let (a, b) = (small(), small());
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.exposition, b.exposition);
    }
}
