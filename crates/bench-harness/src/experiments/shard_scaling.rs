//! Shard-scaling sweep for the streaming match service: sustained rate
//! vs shard count × engine at a fixed offered load.
//!
//! The single-queue service model shows each engine's rate ceiling;
//! this experiment shows the other axis the paper's deployment model
//! opens up — donating more SMs to matching. Each shard owns a
//! persistent device and a [`msg_match::ShardPlacement`]-keyed slice of
//! the traffic, so N shards split the arrival stream into N independent
//! streams. The full per-shard metrics snapshot of the best run is
//! exported as JSON (`BENCH_service.json`) for downstream tooling.

use gpu_msg::{
    simulate_sharded_service, ServiceEngine, ShardEnginePolicy, ShardedServiceConfig,
    ShardedServiceReport,
};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Shard count.
    pub shards: usize,
    /// Engine policy swept.
    pub policy: ShardEnginePolicy,
    /// Outcome (aggregate + per-shard metrics).
    pub report: ShardedServiceReport,
}

/// Shard counts swept.
pub const DEFAULT_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Offered load for the sweep (messages/s) — past the single matrix
/// kernel's ceiling, so the scaling benefit is visible.
pub const DEFAULT_OFFERED: f64 = 10.0e6;

fn policy_name(p: ShardEnginePolicy) -> String {
    match p {
        ShardEnginePolicy::Fixed(ServiceEngine::Matrix) => "matrix".to_string(),
        ShardEnginePolicy::Fixed(ServiceEngine::Partitioned(q)) => format!("partitioned x{q}"),
        ShardEnginePolicy::Fixed(ServiceEngine::Hash) => "hash".to_string(),
        ShardEnginePolicy::Auto(_) => "auto".to_string(),
    }
}

/// Run the sweep on the GTX 1080.
pub fn run(shard_counts: &[usize], offered: f64, seed: u64) -> Vec<Point> {
    let policies = [
        ShardEnginePolicy::Fixed(ServiceEngine::Matrix),
        ShardEnginePolicy::Fixed(ServiceEngine::Partitioned(16)),
        ShardEnginePolicy::Fixed(ServiceEngine::Hash),
    ];
    let mut out = Vec::new();
    for &policy in &policies {
        for &shards in shard_counts {
            let report = simulate_sharded_service(
                GpuGeneration::PascalGtx1080,
                ShardedServiceConfig {
                    shards,
                    arrival_rate: offered,
                    duration: 0.002,
                    policy,
                    seed,
                    ..Default::default()
                },
            );
            out.push(Point {
                shards,
                policy,
                report,
            });
        }
    }
    out
}

/// Render the sweep as a table.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        format!(
            "Shard scaling: sustained rate [M msgs/s] at {:.0} M msgs/s offered, GTX 1080",
            DEFAULT_OFFERED / 1e6
        ),
        &[
            "engine",
            "shards",
            "sustained",
            "util_%",
            "spilled",
            "lat_p50_us",
            "lat_p99_us",
            "saturated",
        ],
    );
    for p in points {
        let agg = &p.report.aggregate;
        let m = &p.report.metrics;
        // Latency percentiles over the busiest shard (worst case).
        let worst = m
            .shards
            .iter()
            .max_by(|a, b| a.arrivals.cmp(&b.arrivals))
            .expect("at least one shard");
        r.push(vec![
            policy_name(p.policy),
            p.shards.to_string(),
            format!("{:.2}", agg.sustained_rate / 1e6),
            format!("{:.0}", agg.utilisation * 100.0),
            m.total_spilled.to_string(),
            format!("{:.1}", worst.match_latency.p50() * 1e6),
            format!("{:.1}", worst.match_latency.p99() * 1e6),
            if agg.saturated { "YES" } else { "no" }.to_string(),
        ]);
    }
    r
}

/// The JSON metrics artefact for the sweep: the snapshot of the highest
/// shard count run per policy (the configuration a deployment would
/// pick), keyed by policy name.
pub fn metrics_json(points: &[Point]) -> String {
    let mut entries: Vec<(String, serde::Value)> = Vec::new();
    for p in points {
        let is_best = !points
            .iter()
            .any(|q| policy_name(q.policy) == policy_name(p.policy) && q.shards > p.shards);
        if is_best {
            entries.push((
                format!("{}@{}shards", policy_name(p.policy), p.shards),
                serde::Serialize::to_value(&p.report.metrics),
            ));
        }
    }
    let mut out = String::new();
    let tree = serde::Value::Object(entries);
    out.push_str(&serde::json::to_string_pretty(&ValueWrap(tree)));
    out
}

/// Newtype so a raw `serde::Value` tree can go through the JSON writer.
struct ValueWrap(serde::Value);

impl serde::Serialize for ValueWrap {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_msg::ServiceMetrics;

    #[test]
    fn sharding_beats_the_single_queue_for_the_matrix_engine() {
        let pts = run(&[1, 4], DEFAULT_OFFERED, 5);
        let matrix = |n: usize| {
            pts.iter()
                .find(|p| {
                    p.shards == n && p.policy == ShardEnginePolicy::Fixed(ServiceEngine::Matrix)
                })
                .unwrap_or_else(|| panic!("sweep is missing the matrix point at {n} shards"))
        };
        let one = matrix(1);
        let four = matrix(4);
        assert!(one.report.aggregate.saturated, "single queue must drown");
        assert!(!four.report.aggregate.saturated, "4 shards must keep up");
        assert!(
            four.report.aggregate.sustained_rate > one.report.aggregate.sustained_rate,
            "sharding must raise the sustained rate"
        );
    }

    #[test]
    fn metrics_json_parses_back_per_policy() {
        let pts = run(&[1, 2], DEFAULT_OFFERED, 5);
        let json = metrics_json(&pts);
        let tree = serde::json::parse_value(&json).expect("metrics_json must emit parseable JSON");
        match &tree {
            serde::Value::Object(entries) => {
                assert_eq!(entries.len(), 3, "one snapshot per policy");
                for (k, v) in entries {
                    assert!(k.ends_with("@2shards"), "best shard count wins: {k}");
                    let m: ServiceMetrics =
                        serde::Deserialize::from_value(v).expect("snapshot must deserialize");
                    assert_eq!(m.shards.len(), 2);
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn report_renders_a_row_per_point() {
        let pts = run(&[1], DEFAULT_OFFERED, 5);
        let rep = report(&pts);
        assert_eq!(rep.rows.len(), pts.len());
    }
}
