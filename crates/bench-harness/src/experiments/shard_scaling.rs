//! Shard-scaling sweep for the streaming match service: sustained rate
//! vs shard count × engine at a fixed offered load.
//!
//! The single-queue service model shows each engine's rate ceiling;
//! this experiment shows the other axis the paper's deployment model
//! opens up — donating more SMs to matching. Each shard owns a
//! persistent device and a [`msg_match::ShardPlacement`]-keyed slice of
//! the traffic, so N shards split the arrival stream into N independent
//! streams. The full per-shard metrics snapshot of the best run is
//! exported as JSON (`BENCH_service.json`) for downstream tooling.

use gpu_msg::{
    simulate_sharded_service, Scheduler, ServiceEngine, ShardEnginePolicy, ShardedServiceConfig,
    ShardedServiceReport,
};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Shard count.
    pub shards: usize,
    /// Engine policy swept.
    pub policy: ShardEnginePolicy,
    /// Outcome (aggregate + per-shard metrics).
    pub report: ShardedServiceReport,
}

/// Shard counts swept.
pub const DEFAULT_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Offered load for the sweep (messages/s) — past the single matrix
/// kernel's ceiling, so the scaling benefit is visible.
pub const DEFAULT_OFFERED: f64 = 10.0e6;

fn policy_name(p: ShardEnginePolicy) -> String {
    match p {
        ShardEnginePolicy::Fixed(ServiceEngine::Matrix) => "matrix".to_string(),
        ShardEnginePolicy::Fixed(ServiceEngine::Partitioned(q)) => format!("partitioned x{q}"),
        ShardEnginePolicy::Fixed(ServiceEngine::Hash) => "hash".to_string(),
        ShardEnginePolicy::Auto(_) => "auto".to_string(),
    }
}

/// Run the sweep on the GTX 1080. Every point executes under the
/// thread-per-shard scheduler: the simulated artefacts are
/// byte-identical to the global clock (the parallel differential test
/// proves this), while `wall_seconds` measures the real OS-thread
/// speedup that sharding buys the host.
pub fn run(shard_counts: &[usize], offered: f64, seed: u64) -> Vec<Point> {
    let policies = [
        ShardEnginePolicy::Fixed(ServiceEngine::Matrix),
        ShardEnginePolicy::Fixed(ServiceEngine::Partitioned(16)),
        ShardEnginePolicy::Fixed(ServiceEngine::Hash),
    ];
    let mut out = Vec::new();
    for &policy in &policies {
        for &shards in shard_counts {
            let report = simulate_sharded_service(
                GpuGeneration::PascalGtx1080,
                ShardedServiceConfig {
                    shards,
                    arrival_rate: offered,
                    duration: 0.002,
                    policy,
                    seed,
                    scheduler: Scheduler::ThreadPerShard,
                    ..Default::default()
                },
            );
            out.push(Point {
                shards,
                policy,
                report,
            });
        }
    }
    out
}

/// Render the sweep as a table.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        format!(
            "Shard scaling: sustained rate [M msgs/s] at {:.0} M msgs/s offered, GTX 1080",
            DEFAULT_OFFERED / 1e6
        ),
        &[
            "engine",
            "shards",
            "sustained",
            "util_%",
            "spilled",
            "lat_p50_us",
            "lat_p99_us",
            "saturated",
            "wall_ms",
        ],
    );
    for p in points {
        let agg = &p.report.aggregate;
        let m = &p.report.metrics;
        // Latency percentiles over the busiest shard (worst case).
        let worst = m
            .shards
            .iter()
            .max_by(|a, b| a.arrivals.cmp(&b.arrivals))
            .expect("at least one shard");
        r.push(vec![
            policy_name(p.policy),
            p.shards.to_string(),
            format!("{:.2}", agg.sustained_rate / 1e6),
            format!("{:.0}", agg.utilisation * 100.0),
            m.total_spilled.to_string(),
            format!("{:.1}", worst.match_latency.p50() * 1e6),
            format!("{:.1}", worst.match_latency.p99() * 1e6),
            if agg.saturated { "YES" } else { "no" }.to_string(),
            format!("{:.1}", p.report.wall_seconds * 1e3),
        ]);
    }
    r
}

/// The JSON metrics artefact for the sweep: the snapshot of the highest
/// shard count run per policy (the configuration a deployment would
/// pick), keyed by policy name, plus a `wall_clock` section recording
/// the host-side timing of every sweep point under the thread-per-shard
/// scheduler (sim time never depends on the scheduler; wall time does).
pub fn metrics_json(points: &[Point]) -> String {
    let mut entries: Vec<(String, serde::Value)> = Vec::new();
    for p in points {
        let is_best = !points
            .iter()
            .any(|q| policy_name(q.policy) == policy_name(p.policy) && q.shards > p.shards);
        if is_best {
            entries.push((
                format!("{}@{}shards", policy_name(p.policy), p.shards),
                serde::Serialize::to_value(&p.report.metrics),
            ));
        }
    }
    entries.push(("wall_clock".to_string(), wall_clock_value(points)));
    entries.push((
        "stall_attribution".to_string(),
        stall_attribution_value(points),
    ));
    entries.push((
        "scheduler_profile".to_string(),
        scheduler_profile_value(points),
    ));
    // The engine-level pre-filter grid rides along in the service
    // artefact so the regression gate diffs one file: a fixed-seed
    // sweep, deterministic like everything above.
    entries.push((
        "prefilter".to_string(),
        crate::experiments::prefilter::section_value(&crate::experiments::prefilter::run(
            &crate::experiments::prefilter::DEFAULT_DEPTHS,
            &crate::experiments::prefilter::DEFAULT_MATCH_PCTS,
            5,
        )),
    ));
    let mut out = String::new();
    let tree = serde::Value::Object(entries);
    out.push_str(&serde::json::to_string_pretty(&ValueWrap(tree)));
    out
}

/// The `stall_attribution` section: per best-per-policy point, the
/// device stall cycles summed over shards and the barrier fraction the
/// `obs_report --check` regression gate watches.
fn stall_attribution_value(points: &[Point]) -> serde::Value {
    let mut entries: Vec<(String, serde::Value)> = Vec::new();
    for p in points {
        let is_best = !points
            .iter()
            .any(|q| policy_name(q.policy) == policy_name(p.policy) && q.shards > p.shards);
        if !is_best {
            continue;
        }
        let mut cycles = 0u64;
        let mut stalls = [0u64; 5];
        for s in &p.report.metrics.shards {
            cycles += s.profile.cycles;
            for (i, (_, n)) in s.profile.stall_breakdown().iter().enumerate() {
                stalls[i] += n;
            }
        }
        let frac = |n: u64| {
            if cycles == 0 {
                0.0
            } else {
                n as f64 / cycles as f64
            }
        };
        entries.push((
            format!("{}@{}shards", policy_name(p.policy), p.shards),
            serde::Value::Object(vec![
                ("cycles".to_string(), serde::Value::U64(cycles)),
                ("issue".to_string(), serde::Value::U64(stalls[0])),
                ("mem_dependency".to_string(), serde::Value::U64(stalls[1])),
                ("barrier".to_string(), serde::Value::U64(stalls[2])),
                ("occupancy_wait".to_string(), serde::Value::U64(stalls[3])),
                ("pipe_contention".to_string(), serde::Value::U64(stalls[4])),
                (
                    "barrier_stall_fraction".to_string(),
                    serde::Value::F64(frac(stalls[2])),
                ),
            ]),
        ));
    }
    serde::Value::Object(entries)
}

/// The `scheduler_profile` section: the dual-clock wall profile of each
/// best-per-policy point — where each shard's OS thread actually spent
/// host time (compute / barrier-wait / backpressure / supervisor-sync).
fn scheduler_profile_value(points: &[Point]) -> serde::Value {
    let mut entries: Vec<(String, serde::Value)> = Vec::new();
    for p in points {
        let is_best = !points
            .iter()
            .any(|q| policy_name(q.policy) == policy_name(p.policy) && q.shards > p.shards);
        if is_best {
            entries.push((
                format!("{}@{}shards", policy_name(p.policy), p.shards),
                serde::Serialize::to_value(&p.report.scheduler_profile),
            ));
        }
    }
    serde::Value::Object(entries)
}

/// The `wall_clock` section: one point per sweep run with host-side
/// seconds and throughput, so downstream tooling can chart the real
/// parallel speedup alongside the simulated rates.
fn wall_clock_value(points: &[Point]) -> serde::Value {
    let pts: Vec<serde::Value> = points
        .iter()
        .map(|p| {
            let matched = p.report.metrics.total_matched;
            let wall = p.report.wall_seconds;
            serde::Value::Object(vec![
                (
                    "engine".to_string(),
                    serde::Value::Str(policy_name(p.policy)),
                ),
                ("shards".to_string(), serde::Value::U64(p.shards as u64)),
                ("wall_seconds".to_string(), serde::Value::F64(wall)),
                (
                    "wall_matches_per_sec".to_string(),
                    serde::Value::F64(if wall > 0.0 {
                        matched as f64 / wall
                    } else {
                        0.0
                    }),
                ),
                (
                    "sim_matches_per_sec".to_string(),
                    serde::Value::F64(p.report.aggregate.sustained_rate),
                ),
                ("total_matched".to_string(), serde::Value::U64(matched)),
            ])
        })
        .collect();
    serde::Value::Object(vec![
        (
            "scheduler".to_string(),
            serde::Value::Str("thread-per-shard".to_string()),
        ),
        ("points".to_string(), serde::Value::Array(pts)),
    ])
}

/// Newtype so a raw `serde::Value` tree can go through the JSON writer.
struct ValueWrap(serde::Value);

impl serde::Serialize for ValueWrap {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_msg::ServiceMetrics;

    #[test]
    fn sharding_beats_the_single_queue_for_the_matrix_engine() {
        let pts = run(&[1, 4], DEFAULT_OFFERED, 5);
        let matrix = |n: usize| {
            pts.iter()
                .find(|p| {
                    p.shards == n && p.policy == ShardEnginePolicy::Fixed(ServiceEngine::Matrix)
                })
                .unwrap_or_else(|| panic!("sweep is missing the matrix point at {n} shards"))
        };
        let one = matrix(1);
        let four = matrix(4);
        assert!(one.report.aggregate.saturated, "single queue must drown");
        assert!(!four.report.aggregate.saturated, "4 shards must keep up");
        assert!(
            four.report.aggregate.sustained_rate > one.report.aggregate.sustained_rate,
            "sharding must raise the sustained rate"
        );
    }

    #[test]
    fn metrics_json_parses_back_per_policy() {
        let pts = run(&[1, 2], DEFAULT_OFFERED, 5);
        let json = metrics_json(&pts);
        let tree = serde::json::parse_value(&json).expect("metrics_json must emit parseable JSON");
        match &tree {
            serde::Value::Object(entries) => {
                assert_eq!(
                    entries.len(),
                    7,
                    "one snapshot per policy plus the wall_clock, stall_attribution, \
                     scheduler_profile and prefilter sections"
                );
                for (k, v) in entries {
                    if k == "wall_clock"
                        || k == "stall_attribution"
                        || k == "scheduler_profile"
                        || k == "prefilter"
                    {
                        continue;
                    }
                    assert!(k.ends_with("@2shards"), "best shard count wins: {k}");
                    let m: ServiceMetrics =
                        serde::Deserialize::from_value(v).expect("snapshot must deserialize");
                    assert_eq!(m.shards.len(), 2);
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_section_covers_every_sweep_point() {
        let pts = run(&[1, 2], DEFAULT_OFFERED, 5);
        let json = metrics_json(&pts);
        let tree = serde::json::parse_value(&json).expect("parseable JSON");
        let wall = tree.field("wall_clock").expect("wall_clock section");
        assert_eq!(
            wall.field("scheduler").unwrap(),
            &serde::Value::Str("thread-per-shard".to_string())
        );
        let points = match wall.field("points").unwrap() {
            serde::Value::Array(items) => items,
            other => panic!("points must be an array, got {other:?}"),
        };
        assert_eq!(points.len(), pts.len(), "one wall point per sweep point");
        for p in points {
            let secs = match p.field("wall_seconds").unwrap() {
                serde::Value::F64(s) => *s,
                other => panic!("wall_seconds must be a float, got {other:?}"),
            };
            assert!(secs > 0.0, "wall clock must be measured");
            for key in [
                "engine",
                "shards",
                "wall_matches_per_sec",
                "sim_matches_per_sec",
                "total_matched",
            ] {
                p.field(key).unwrap_or_else(|_| panic!("missing {key}"));
            }
        }
    }

    #[test]
    fn stall_and_scheduler_sections_cover_every_policy() {
        let pts = run(&[1, 2], DEFAULT_OFFERED, 5);
        let tree = serde::json::parse_value(&metrics_json(&pts)).expect("parseable JSON");
        let stalls = tree.field("stall_attribution").expect("stall section");
        let profs = tree.field("scheduler_profile").expect("profile section");
        for section in [stalls, profs] {
            match section {
                serde::Value::Object(entries) => {
                    assert_eq!(entries.len(), 3, "one entry per policy");
                    for (k, _) in entries {
                        assert!(k.ends_with("@2shards"), "best shard count wins: {k}");
                    }
                }
                other => panic!("expected object, got {other:?}"),
            }
        }
        for (_, v) in match stalls {
            serde::Value::Object(e) => e,
            _ => unreachable!(),
        } {
            let frac = match v.field("barrier_stall_fraction").unwrap() {
                serde::Value::F64(f) => *f,
                serde::Value::U64(n) => *n as f64,
                other => panic!("fraction must be numeric, got {other:?}"),
            };
            assert!((0.0..=1.0).contains(&frac));
        }
        for (k, v) in match profs {
            serde::Value::Object(e) => e,
            _ => unreachable!(),
        } {
            let prof: gpu_msg::SchedulerProfile =
                serde::Deserialize::from_value(v).expect("profile must deserialize");
            assert_eq!(prof.shards.len(), 2, "two wall profiles under {k}");
            assert_eq!(prof.scheduler, "thread_per_shard");
        }
    }

    #[test]
    fn report_renders_a_row_per_point() {
        let pts = run(&[1], DEFAULT_OFFERED, 5);
        let rep = report(&pts);
        assert_eq!(rep.rows.len(), pts.len());
    }
}
