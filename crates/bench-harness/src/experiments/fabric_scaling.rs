//! Fabric protocol sweep: eager threshold × loss rate × reorder skew on
//! a fixed all-to-all workload over the simulated interconnect.
//!
//! The paper's relaxations exist because the wire is not an ideal
//! in-order memcpy; this sweep quantifies that wire. Each point drives
//! the identical message mix through a [`fabric::Fabric`] and records
//! how the protocol split (eager vs RTS/CTS), the injected faults and
//! the credit flow shape completion time and wire overhead. The full
//! sweep is exported as `BENCH_fabric.json`; with the same seed the
//! artefact is byte-identical run to run.

use bytes::Bytes;
use fabric::{DeliveryOrder, Fabric, FabricConfig, FaultConfig};
use msg_match::Envelope;
use serde::{Deserialize, Serialize};

use crate::table::Report;

/// Eager thresholds swept (bytes): everything-rendezvous, the small
/// payload only, everything-eager.
pub const DEFAULT_EAGER_THRESHOLDS: [usize; 3] = [0, 256, 4096];

/// Packet drop probabilities swept.
pub const DEFAULT_DROP_PROBS: [f64; 3] = [0.0, 0.01, 0.05];

/// Reorder skew bounds swept (ns); a non-zero skew also enables a 50%
/// reorder probability.
pub const DEFAULT_SKEWS: [u64; 2] = [0, 2_000];

/// Small payload size in the workload mix (eager at the mid threshold).
pub const SMALL_BYTES: usize = 64;

/// Large payload size in the workload mix (rendezvous below the top
/// threshold).
pub const LARGE_BYTES: usize = 2_048;

/// Sweep shape: which protocol/fault axes to cross with the fixed
/// workload.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Endpoints in the all-to-all.
    pub ranks: u32,
    /// Messages per ordered pair (half small, half large).
    pub msgs_per_pair: u32,
    /// Fault-injection seed shared by every point.
    pub seed: u64,
    /// Eager thresholds to sweep.
    pub eager_thresholds: Vec<usize>,
    /// Drop probabilities to sweep.
    pub drop_probs: Vec<f64>,
    /// Reorder skew bounds to sweep.
    pub skews: Vec<u64>,
}

impl SweepConfig {
    /// The full default sweep (18 points).
    pub fn full(seed: u64) -> Self {
        SweepConfig {
            ranks: 4,
            msgs_per_pair: 20,
            seed,
            eager_thresholds: DEFAULT_EAGER_THRESHOLDS.to_vec(),
            drop_probs: DEFAULT_DROP_PROBS.to_vec(),
            skews: DEFAULT_SKEWS.to_vec(),
        }
    }

    /// A tiny sweep for CI smoke runs (4 points, small workload).
    pub fn smoke(seed: u64) -> Self {
        SweepConfig {
            ranks: 3,
            msgs_per_pair: 6,
            seed,
            eager_thresholds: vec![0, 4096],
            drop_probs: vec![0.0, 0.02],
            skews: vec![0],
        }
    }
}

/// One sweep point: configuration axes plus the counters the run
/// produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricPoint {
    /// Eager threshold of this point (bytes).
    pub eager_threshold: usize,
    /// Drop probability of this point.
    pub drop_prob: f64,
    /// Reorder skew bound of this point (ns).
    pub reorder_skew_ns: u64,
    /// Simulated nanoseconds until the fabric quiesced.
    pub finish_ns: u64,
    /// Messages submitted.
    pub messages: u64,
    /// Messages delivered (must equal `messages`).
    pub delivered: u64,
    /// Messages that took the eager path.
    pub eager: u64,
    /// Messages that negotiated RTS/CTS.
    pub rendezvous: u64,
    /// First transmissions (all packet kinds).
    pub packets: u64,
    /// Timeout-driven retransmissions.
    pub retransmits: u64,
    /// Packets the fault model dropped.
    pub drops: u64,
    /// Duplicate packets the receiver suppressed.
    pub duplicates_dropped: u64,
    /// Data packets that waited for a flow-control credit.
    pub credit_stalls: u64,
    /// Total nanoseconds spent waiting for credits.
    pub credit_stall_ns: u64,
    /// Bytes serialized onto links (headers + retransmits included).
    pub wire_bytes: u64,
    /// Application payload bytes carried.
    pub payload_bytes: u64,
    /// `wire_bytes / payload_bytes`.
    pub overhead: f64,
}

/// The exported artefact: sweep shape + every point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricBenchReport {
    /// Endpoints in the all-to-all.
    pub ranks: u32,
    /// Messages per ordered pair.
    pub msgs_per_pair: u32,
    /// Fault-injection seed.
    pub seed: u64,
    /// One entry per (threshold, drop, skew) combination.
    pub points: Vec<FabricPoint>,
}

/// Drive the fixed all-to-all mix through `net`; returns payload bytes
/// submitted.
fn drive(net: &mut Fabric, msgs_per_pair: u32) -> u64 {
    let ranks = net.ranks();
    let mut payload_bytes = 0u64;
    for m in 0..msgs_per_pair {
        for src in 0..ranks {
            for dst in 0..ranks {
                if src == dst {
                    continue;
                }
                let len = if m % 2 == 0 { SMALL_BYTES } else { LARGE_BYTES };
                payload_bytes += len as u64;
                let fill = (src * 31 + dst * 7 + m) as u8;
                net.send(
                    src,
                    dst,
                    Envelope::new(src, m, 0),
                    Bytes::from(vec![fill; len]),
                );
            }
        }
    }
    payload_bytes
}

fn fabric_config(cfg: &SweepConfig, threshold: usize, drop: f64, skew: u64) -> FabricConfig {
    FabricConfig {
        eager_threshold: threshold,
        seed: cfg.seed,
        order: DeliveryOrder::PerPairFifo,
        fault: FaultConfig {
            drop_prob: drop,
            duplicate_prob: if drop > 0.0 { drop / 2.0 } else { 0.0 },
            reorder_prob: if skew > 0 { 0.5 } else { 0.0 },
            reorder_skew_ns: skew,
            corrupt_prob: 0.0,
        },
        ..Default::default()
    }
}

/// Run the sweep.
///
/// # Panics
/// Panics if any point fails to quiesce — a lossy fabric that cannot
/// reproduce the lossless delivery set is a protocol bug, not a data
/// point.
pub fn run(cfg: &SweepConfig) -> FabricBenchReport {
    let mut points = Vec::new();
    for &threshold in &cfg.eager_thresholds {
        for &drop in &cfg.drop_probs {
            for &skew in &cfg.skews {
                let mut net = Fabric::new(cfg.ranks, fabric_config(cfg, threshold, drop, skew));
                let payload_bytes = drive(&mut net, cfg.msgs_per_pair);
                net.run_until_quiescent(60_000_000_000)
                    .unwrap_or_else(|e| panic!("point thr={threshold} drop={drop}: {e}"));
                for dst in 0..cfg.ranks {
                    net.take_deliveries(dst);
                }
                let s = net.stats();
                points.push(FabricPoint {
                    eager_threshold: threshold,
                    drop_prob: drop,
                    reorder_skew_ns: skew,
                    finish_ns: net.now_ns(),
                    messages: s.messages_sent,
                    delivered: s.messages_delivered,
                    eager: s.eager_messages,
                    rendezvous: s.rendezvous_messages,
                    packets: s.packets_sent,
                    retransmits: s.retransmits,
                    drops: s.drops_injected,
                    duplicates_dropped: s.duplicate_packets_dropped,
                    credit_stalls: s.credit_stalls,
                    credit_stall_ns: s.credit_stall_ns,
                    wire_bytes: s.wire_bytes,
                    payload_bytes,
                    overhead: s.overhead_ratio(payload_bytes),
                });
            }
        }
    }
    FabricBenchReport {
        ranks: cfg.ranks,
        msgs_per_pair: cfg.msgs_per_pair,
        seed: cfg.seed,
        points,
    }
}

/// Render the sweep as a table.
pub fn report(r: &FabricBenchReport) -> Report {
    let mut rep = Report::new(
        format!(
            "Fabric sweep: eager threshold x loss x skew, {} ranks all-to-all, {} msgs/pair",
            r.ranks, r.msgs_per_pair
        ),
        &[
            "eager_thr",
            "drop",
            "skew_ns",
            "finish_us",
            "eager/rndv",
            "pkts",
            "retx",
            "stalls",
            "wire_KB",
            "overhead",
        ],
    );
    for p in &r.points {
        rep.push(vec![
            p.eager_threshold.to_string(),
            format!("{:.2}", p.drop_prob),
            p.reorder_skew_ns.to_string(),
            format!("{:.1}", p.finish_ns as f64 / 1e3),
            format!("{}/{}", p.eager, p.rendezvous),
            p.packets.to_string(),
            p.retransmits.to_string(),
            p.credit_stalls.to_string(),
            format!("{:.1}", p.wire_bytes as f64 / 1024.0),
            format!("{:.3}", p.overhead),
        ]);
    }
    rep
}

/// Serialize the artefact (pretty JSON, deterministic byte-for-byte for
/// a given seed).
pub fn to_json(r: &FabricBenchReport) -> String {
    serde::json::to_string_pretty(r)
}

/// Parse an artefact back (CI schema validation, diffing).
///
/// # Errors
/// Malformed JSON or a mismatched schema.
pub fn from_json(s: &str) -> Result<FabricBenchReport, String> {
    serde::json::from_str(s).map_err(|e| format!("BENCH_fabric.json does not parse: {e:?}"))
}

/// A tiny traced run whose per-link span timeline is exported as
/// Perfetto-loadable JSON (`FABRIC_trace.json`).
pub fn trace_artifact(seed: u64) -> String {
    let cfg = FabricConfig {
        mtu: 128,
        credits: 2,
        trace: true,
        seed,
        fault: FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            reorder_prob: 0.3,
            reorder_skew_ns: 5_000,
            corrupt_prob: 0.05,
        },
        ..Default::default()
    };
    let mut net = Fabric::new(2, cfg);
    for i in 0..8u32 {
        let len = if i % 2 == 0 { 64 } else { 1536 };
        net.send(
            0,
            1,
            Envelope::new(0, i, 0),
            Bytes::from(vec![i as u8; len]),
        );
    }
    net.run_until_quiescent(60_000_000_000)
        .expect("trace run must quiesce");
    net.trace_json().expect("tracing is enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_covers_every_combination_and_loses_nothing() {
        let r = run(&SweepConfig::smoke(5));
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert_eq!(p.delivered, p.messages, "lossy == lossless delivery set");
            assert!(p.overhead > 1.0, "headers make overhead > 1");
            match p.eager_threshold {
                0 => assert_eq!(p.eager, 0, "threshold 0 forces rendezvous"),
                4096 => assert_eq!(p.rendezvous, 0, "threshold 4096 forces eager"),
                _ => {}
            }
            if p.drop_prob > 0.0 {
                // (Not retransmits >= drops: a drop that hits a
                // fault-injected duplicate copy needs no repair.)
                assert!(p.retransmits > 0, "loss must force some repair");
            }
        }
    }

    #[test]
    fn artifact_roundtrips_and_is_deterministic() {
        let a = to_json(&run(&SweepConfig::smoke(5)));
        let b = to_json(&run(&SweepConfig::smoke(5)));
        assert_eq!(a, b, "same seed must produce a byte-identical artefact");
        let parsed = from_json(&a).expect("roundtrip");
        assert_eq!(parsed.points.len(), 4);
        let c = to_json(&run(&SweepConfig::smoke(6)));
        assert_ne!(a, c, "a different seed must show up in the artefact");
    }

    #[test]
    fn eager_threshold_trades_packets_for_handshakes() {
        let r = run(&SweepConfig {
            drop_probs: vec![0.0],
            skews: vec![0],
            ..SweepConfig::smoke(5)
        });
        let by_thr = |t: usize| r.points.iter().find(|p| p.eager_threshold == t).unwrap();
        let rndv = by_thr(0);
        let eager = by_thr(4096);
        assert!(
            rndv.packets > eager.packets,
            "all-rendezvous pays RTS/CTS packets: {} vs {}",
            rndv.packets,
            eager.packets
        );
        assert!(
            rndv.finish_ns > eager.finish_ns,
            "the handshake round-trip costs time"
        );
    }

    #[test]
    fn trace_artifact_is_perfetto_shaped() {
        let json = trace_artifact(5);
        let tree = serde::json::parse_value(&json).expect("trace JSON parses");
        let events = tree.field("traceEvents").expect("traceEvents key");
        match events {
            serde::Value::Array(items) => {
                assert!(!items.is_empty(), "a lossy traced run must emit spans")
            }
            other => panic!("traceEvents must be an array, got {other:?}"),
        }
        assert_eq!(json, trace_artifact(5), "trace export is deterministic");
    }
}
