//! Architectural profile of each matcher — the quantitative backing for
//! the paper's Discussion (Section VII-C): "The fully MPI-compliant
//! algorithm offers only a limited amount of parallelism and performance
//! is low due to the GPU's low single thread performance. Another issue
//! is the lack of a sufficient number of available warps to hide long
//! instruction latencies."
//!
//! For each engine the table reports instructions, achieved IPC,
//! dependency-stall and barrier-wait cycles, and global-memory traffic —
//! making the bottleneck shift visible: the compliant matcher is
//! latency-bound on its sequential reduce chain; partitioning converts
//! that into parallel chains; the hash matcher is memory/atomic-bound.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::Report;

/// Profile of one matcher run.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Engine label.
    pub name: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions issued.
    pub instructions: u64,
    /// Achieved instructions per cycle.
    pub ipc: f64,
    /// Cycles warps spent stalled on operand dependencies (summed over
    /// warps, so it can exceed `cycles`).
    pub dependency_stall_cycles: u64,
    /// Cycles warps spent waiting at barriers (summed over warps).
    pub barrier_wait_cycles: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Matches per second.
    pub matches_per_sec: f64,
}

impl EngineProfile {
    fn of(name: &str, r: &GpuMatchReport) -> EngineProfile {
        EngineProfile {
            name: name.to_string(),
            cycles: r.cycles,
            instructions: r.instructions,
            ipc: r.instructions as f64 / r.cycles.max(1) as f64,
            dependency_stall_cycles: r.dependency_stall_cycles,
            barrier_wait_cycles: r.barrier_wait_cycles,
            global_transactions: r.global_transactions,
            matches_per_sec: r.matches_per_sec,
        }
    }
}

/// Profile the three engines at `len` entries on the GTX 1080.
pub fn run(len: usize, seed: u64) -> Vec<EngineProfile> {
    let w = WorkloadSpec::fully_matching(len, seed).generate();
    let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
    let matrix = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
    let part = PartitionedMatcher::new(16)
        .match_batch(&mut gpu, &w.msgs, &w.reqs)
        .expect("no wildcards");
    let hash = HashMatcher::default()
        .match_batch(&mut gpu, &w.msgs, &w.reqs)
        .expect("no wildcards");
    vec![
        EngineProfile::of("matrix (full MPI)", &matrix),
        EngineProfile::of("partitioned x16", &part),
        EngineProfile::of("hash (unordered)", &hash),
    ]
}

/// Instruction-mix report: per-class instruction shares for each engine.
pub fn instruction_mix(len: usize, seed: u64) -> Report {
    use simt_sim::OpClass;
    let w = WorkloadSpec::fully_matching(len, seed).generate();
    let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
    let engines: Vec<(&str, GpuMatchReport)> = vec![
        (
            "matrix",
            MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs),
        ),
        (
            "partitioned x16",
            PartitionedMatcher::new(16)
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
                .expect("no wildcards"),
        ),
        (
            "hash",
            HashMatcher::default()
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
                .expect("no wildcards"),
        ),
    ];
    let mut rep = Report::new(
        "Instruction mix per engine [% of issued instructions] (GTX 1080)",
        &["engine", "alu", "warp", "gmem", "smem", "atomic", "bar"],
    );
    for (name, r) in engines {
        let total: u64 = r.class_instructions.iter().sum();
        let mut row = vec![name.to_string()];
        for class in OpClass::ALL {
            row.push(format!(
                "{:.1}",
                100.0 * r.class_instructions[class.index()] as f64 / total.max(1) as f64
            ));
        }
        rep.push(row);
    }
    rep
}

/// Render the profile table.
pub fn report(profiles: &[EngineProfile]) -> Report {
    let mut r = Report::new(
        "Section VII-C: architectural profile (GTX 1080)",
        &[
            "engine",
            "cycles",
            "instr",
            "IPC",
            "dep_stall_cy",
            "barrier_cy",
            "gmem_tx",
            "M matches/s",
        ],
    );
    for p in profiles {
        r.push(vec![
            p.name.clone(),
            p.cycles.to_string(),
            p.instructions.to_string(),
            format!("{:.2}", p.ipc),
            p.dependency_stall_cycles.to_string(),
            p.barrier_wait_cycles.to_string(),
            p.global_transactions.to_string(),
            format!("{:.2}", p.matches_per_sec / 1e6),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_matcher_is_latency_bound() {
        let profiles = run(1024, 5);
        assert_eq!(profiles.len(), 3);
        let matrix = &profiles[0];
        let part = &profiles[1];
        // The paper's diagnosis: the compliant algorithm cannot keep the
        // SM busy; partitioning raises utilisation.
        assert!(
            matrix.ipc < part.ipc,
            "partitioning must raise IPC: {} vs {}",
            matrix.ipc,
            part.ipc
        );
        assert!(
            matrix.ipc < 1.5,
            "compliant matcher is latency-bound: IPC {}",
            matrix.ipc
        );
        assert!(
            matrix.dependency_stall_cycles > 0,
            "the reduce chain must show dependency stalls"
        );
    }

    #[test]
    fn report_renders() {
        let profiles = run(256, 1);
        assert_eq!(report(&profiles).rows.len(), 3);
    }

    #[test]
    fn instruction_mix_differs_by_engine() {
        let rep = instruction_mix(512, 3);
        assert_eq!(rep.rows.len(), 3);
        // The hash engine must be atomic-heavy relative to the matrix.
        let atomic = |row: usize| rep.rows[row][5].parse::<f64>().unwrap();
        assert!(
            atomic(2) > atomic(0) + 3.0,
            "hash atomics {} vs matrix {}",
            atomic(2),
            atomic(0)
        );
    }
}
