//! Queue-depth scaling with process count — the related-work
//! observation the paper builds on (Keller et al.: "the UMQ length
//! scales linearly with the process count … However, this only applies
//! to rank 0 while other ranks do not exceed a queue length of 200").
//!
//! A gather-to-root phase is appended to a regular stencil application;
//! rank 0's maximum UMQ depth then grows linearly with the rank count
//! while the other ranks' depths stay flat — quantifying why hotspot
//! ranks, not averages, dictate matcher provisioning.

use proxy_traces::{analyze, generate, AppModel, GenOptions};

use crate::table::Report;

/// One scaling point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Rank count.
    pub ranks: u32,
    /// Rank 0's maximum UMQ depth.
    pub rank0_umq: f64,
    /// Median (over the other ranks) maximum UMQ depth.
    pub others_umq: f64,
}

/// Rank counts swept.
pub const DEFAULT_RANKS: [u32; 4] = [16, 32, 64, 128];

/// Run the scaling study on a LULESH-like stencil with a gather phase.
pub fn run(rank_counts: &[u32], funnel_msgs: u32, seed: u64) -> Vec<Point> {
    let model = AppModel::by_name("LULESH").expect("known app");
    rank_counts
        .iter()
        .map(|&ranks| {
            let trace = generate(
                &model,
                GenOptions {
                    depth_scale: 0.5,
                    ranks: Some(ranks),
                    seed,
                    rank0_funnel: funnel_msgs,
                },
            );
            // Per-rank maxima: rank 0 vs the field. The analyzer returns
            // a distribution over ranks; isolate rank 0 by re-analysing
            // the trace with rank 0's traffic only? Cheaper: the funnel
            // targets rank 0 exclusively, so the distribution's max IS
            // rank 0 and the median is the field.
            let a = analyze(&trace);
            Point {
                ranks,
                rank0_umq: a.umq_depth.max,
                others_umq: a.umq_depth.median,
            }
        })
        .collect()
}

/// Render the study.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "Related-work scaling: rank-0 UMQ depth vs process count (gather phase)",
        &["ranks", "rank0_umq_max", "other_ranks_median"],
    );
    for p in points {
        r.push(vec![
            p.ranks.to_string(),
            format!("{:.0}", p.rank0_umq),
            format!("{:.0}", p.others_umq),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank0_scales_linearly_others_stay_flat() {
        let pts = run(&[16, 64], 8, 7);
        let (small, large) = (pts[0], pts[1]);
        let rank0_growth = large.rank0_umq / small.rank0_umq;
        let other_growth = large.others_umq / small.others_umq.max(1.0);
        assert!(
            rank0_growth > 2.5,
            "rank 0 must scale ~linearly with 4x ranks: {rank0_growth}"
        );
        assert!(
            other_growth < 1.5,
            "other ranks must stay flat: {other_growth}"
        );
    }

    #[test]
    fn without_funnel_no_hotspot() {
        let pts = run(&[64], 0, 7);
        // Max within ~2x of the median when no rank is a gather root.
        assert!(pts[0].rank0_umq < pts[0].others_umq * 2.0, "{pts:?}");
    }
}
