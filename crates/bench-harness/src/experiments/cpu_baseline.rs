//! The CPU baseline measurement (Section II-C): a native, wall-clock
//! benchmark of list-based UMQ matching.
//!
//! The paper observes host MPI libraries reaching ~30 M matches/s when
//! queues are short and collapsing below 5 M matches/s beyond 512
//! entries. This module measures our `ListMatcher` the same way:
//! pre-fill the UMQ with `len` unique envelopes, then post `len`
//! receives in *random* order so the average search walks half the
//! queue — the regime that kills linear lists.
//!
//! These are real nanoseconds on the machine running the harness, not
//! simulated GPU time; absolute numbers shift with the host CPU but the
//! collapse beyond a few hundred entries is structural.

use std::time::Instant;

use msg_match::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::table::{fmt_mps, Report};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Queue length.
    pub len: usize,
    /// Matches per second, random post order (worst-ish case).
    pub random_mps: f64,
    /// Matches per second, FIFO post order (best case).
    pub fifo_mps: f64,
    /// Matches per second, random posts on the Flajslik-style hashed
    /// matcher with 64 buckets (the cited 3.5×-class improvement).
    pub hashed_mps: f64,
}

/// Queue lengths swept.
pub const DEFAULT_LENS: [usize; 8] = [16, 64, 128, 256, 512, 1024, 2048, 4096];

fn measure_hashed(len: usize, seed: u64, buckets: usize) -> f64 {
    let envelopes: Vec<Envelope> = (0..len)
        .map(|i| Envelope::new((i % 1024) as u32, (i / 1024) as u32, 0))
        .collect();
    let mut order: Vec<usize> = (0..len).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));
    let reps = (2_000_000 / (len * len / (64 * buckets) + len) + 1).clamp(3, 2000);
    let mut total_matches = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let mut m = HashedListMatcher::new(buckets);
        for e in &envelopes {
            m.arrive(*e);
        }
        for &i in &order {
            let e = &envelopes[i];
            let hit = m.post(RecvRequest::exact(e.src, e.tag, 0));
            debug_assert!(hit.is_some());
            total_matches += 1;
        }
    }
    total_matches as f64 / start.elapsed().as_secs_f64()
}

fn measure(len: usize, shuffle: bool, seed: u64) -> f64 {
    let envelopes: Vec<Envelope> = (0..len)
        .map(|i| Envelope::new((i % 1024) as u32, (i / 1024) as u32, 0))
        .collect();
    let mut order: Vec<usize> = (0..len).collect();
    if shuffle {
        order.shuffle(&mut StdRng::seed_from_u64(seed));
    }

    // Enough repetitions for a stable clock reading.
    let reps = (2_000_000 / (len * len / 64 + len) + 1).clamp(3, 2000);
    let mut total_matches = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        let mut m = ListMatcher::with_stats(false);
        for e in &envelopes {
            m.arrive(*e);
        }
        for &i in &order {
            let e = &envelopes[i];
            let hit = m.post(RecvRequest::exact(e.src, e.tag, 0));
            debug_assert!(hit.is_some());
            total_matches += 1;
        }
    }
    total_matches as f64 / start.elapsed().as_secs_f64()
}

/// Run the sweep.
pub fn run(lens: &[usize], seed: u64) -> Vec<Point> {
    lens.iter()
        .map(|&len| Point {
            len,
            random_mps: measure(len, true, seed),
            fifo_mps: measure(len, false, seed),
            hashed_mps: measure_hashed(len, seed, 64),
        })
        .collect()
}

/// Render the sweep.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "CPU baseline: list-based matching rate [M matches/s] (native wall clock)",
        &["queue_len", "random_order", "fifo_order", "hashed_64q"],
    );
    for p in points {
        r.push(vec![
            p.len.to_string(),
            fmt_mps(p.random_mps),
            fmt_mps(p.fifo_mps),
            fmt_mps(p.hashed_mps),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_random_queues_collapse() {
        let pts = run(&[64, 2048], 3);
        let short = pts[0].random_mps;
        let long = pts[1].random_mps;
        assert!(
            long < short / 4.0,
            "linear search must collapse: {short:.0} → {long:.0}"
        );
    }

    #[test]
    fn hashed_matcher_recovers_the_collapse() {
        // The related-work claim (Flajslik et al.): hashing to multiple
        // queues restores multiple-× performance on deep random queues.
        let pts = run(&[2048], 3);
        assert!(
            pts[0].hashed_mps > pts[0].random_mps * 3.0,
            "hashed {} vs list {}",
            pts[0].hashed_mps,
            pts[0].random_mps
        );
    }

    #[test]
    fn fifo_stays_fast() {
        let pts = run(&[2048], 3);
        assert!(
            pts[0].fifo_mps > pts[0].random_mps * 2.0,
            "head hits must beat half-queue walks: fifo {} vs random {}",
            pts[0].fifo_mps,
            pts[0].random_mps
        );
    }
}
