//! Cross-layer chaos sweep: every fault class the stack tolerates,
//! composed on one seeded schedule, with an end-to-end invariant
//! checker.
//!
//! Each point drives two layers under the same seed:
//!
//! * **service layer** — a resharding multi-tenant service (the hot/cold
//!   skew keeps live migration in play) under a random fault soup of
//!   crashes, hangs, slow windows, partitions and checkpoint corruption,
//!   with checkpointed recovery and a partition-aware supervisor. The
//!   oracle is a fault-free run of the identical configuration: the
//!   per-stream committed sequences must byte-equal it (exactly-once),
//!   every committed sequence must be dense and ascending (per-pair
//!   FIFO), and no guaranteed-class message may be lost.
//! * **fabric layer** — an all-to-all over the simulated wire with
//!   per-packet drop/duplicate/reorder/corruption *and* link-lifecycle
//!   faults (flap windows, topology partitions). The oracle is the same
//!   workload on a clean wire: each `(src, dst)` channel must deliver
//!   identical payloads in identical order.
//!
//! Any divergence increments the point's `violations`; the artefact
//! (`BENCH_chaos.json`) carries `total_violations`, which CI and
//! `obs_report --check` pin to zero with no tolerance. Per seed the
//! artefact is byte-identical run to run.

use std::collections::BTreeMap;

use bytes::Bytes;
use fabric::{DeliveryOrder, Fabric, FabricConfig, FaultConfig, LinkFaultConfig};
use gpu_msg::{
    FaultPlan, FaultRates, FaultTolerance, QosClass, RecoveryConfig, ReshardPolicy, ServiceEngine,
    ServiceMetrics, ShardEnginePolicy, ShardedMatchService, ShardedServiceConfig, SupervisorConfig,
    TenancyConfig, TenantSpec,
};
use msg_match::Envelope;
use serde::{Deserialize, Serialize};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// Fault-intensity multipliers swept (1.0 ≈ one fault of each class per
/// run at the default duration).
pub const DEFAULT_SCALES: [f64; 2] = [1.0, 2.0];

/// Seeds swept at each intensity.
pub const DEFAULT_SEEDS: [u64; 3] = [5, 6, 7];

/// Shards in the service-layer scenario.
pub const DEFAULT_SHARDS: usize = 2;

/// Offered load of the service-layer scenario (messages/s).
pub const DEFAULT_OFFERED: f64 = 8.0e6;

/// Simulated duration of the service-layer scenario (seconds).
pub const DEFAULT_DURATION: f64 = 1.0e-3;

/// Sweep shape.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fault-intensity multipliers.
    pub scales: Vec<f64>,
    /// Seeds crossed with every scale.
    pub seeds: Vec<u64>,
    /// Endpoints in the fabric all-to-all.
    pub ranks: u32,
    /// Messages per ordered pair on the fabric side.
    pub msgs_per_pair: u32,
}

impl SweepConfig {
    /// The full default sweep (6 points).
    pub fn full() -> Self {
        SweepConfig {
            scales: DEFAULT_SCALES.to_vec(),
            seeds: DEFAULT_SEEDS.to_vec(),
            ranks: 3,
            msgs_per_pair: 24,
        }
    }

    /// The reduced CI sweep (3 points, same workload shape).
    pub fn smoke() -> Self {
        SweepConfig {
            scales: vec![2.0],
            seeds: DEFAULT_SEEDS.to_vec(),
            ranks: 3,
            msgs_per_pair: 24,
        }
    }
}

/// One sweep point: the fault classes that landed and the invariant
/// verdicts, both layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Fault-intensity multiplier of this point.
    pub scale: f64,
    /// Seed of this point (workload, fault plan and wire all derive
    /// from it).
    pub seed: u64,
    /// Shard crashes that landed.
    pub crashes: u64,
    /// Shard hangs that landed.
    pub hangs: u64,
    /// Shard partitions (unreachable windows) that landed.
    pub partitions: u64,
    /// Checkpoint snapshots corrupted in place.
    pub corrupt_checkpoints: u64,
    /// Restores that fell back past a corrupt newest snapshot.
    pub snapshot_fallbacks: u64,
    /// Stale-epoch commits fenced off after failover.
    pub fenced_commits: u64,
    /// Completed checkpoint/journal recoveries.
    pub recoveries: u64,
    /// Supervisor failover reroutes.
    pub failovers: u64,
    /// Live slot migrations the reshard planner executed.
    pub migrations: u64,
    /// Journal entries replayed during recoveries.
    pub journal_replayed: u64,
    /// Re-matched entries suppressed at commit (exactly-once).
    pub replay_duplicates: u64,
    /// Messages committed by the chaos run.
    pub matched: u64,
    /// Streams whose committed sequence diverged from the fault-free
    /// oracle.
    pub exactly_once_violations: u64,
    /// Streams whose committed sequence was not dense ascending.
    pub fifo_violations: u64,
    /// Guaranteed-class commits present fault-free but missing under
    /// chaos.
    pub guaranteed_lost: u64,
    /// Messages submitted on the fabric side.
    pub fabric_messages: u64,
    /// Messages the chaotic wire delivered (must equal submitted).
    pub fabric_delivered: u64,
    /// Timeout-driven retransmissions on the chaotic wire.
    pub fabric_retransmits: u64,
    /// Packets the fault model dropped in flight.
    pub fabric_drops: u64,
    /// Traversals corrupted in flight (all CRC-rejected and repaired).
    pub fabric_corruptions: u64,
    /// Traversals lost to a down link (flap or partition window).
    pub fabric_link_down_drops: u64,
    /// Retransmit exhaustions parked on a down link until its heal.
    pub fabric_parked: u64,
    /// Structured link-down notices emitted.
    pub fabric_link_downs: u64,
    /// Structured link-heal notices emitted.
    pub fabric_link_heals: u64,
    /// `(src, dst)` channels whose delivered payload sequence diverged
    /// from the clean wire.
    pub fabric_channel_mismatches: u64,
    /// Total invariant violations at this point (must be zero).
    pub violations: u64,
}

/// The exported artefact (`BENCH_chaos.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosBench {
    /// Shards in the service-layer scenario.
    pub shards: u64,
    /// Offered load of the service-layer scenario (messages/s).
    pub offered_rate: f64,
    /// Simulated duration of the service-layer scenario (seconds).
    pub duration: f64,
    /// Endpoints in the fabric all-to-all.
    pub ranks: u32,
    /// Messages per ordered pair on the fabric side.
    pub msgs_per_pair: u32,
    /// One entry per (scale, seed) combination.
    pub points: Vec<ChaosPoint>,
    /// Sum of every point's `violations` — the number CI pins to zero.
    pub total_violations: u64,
}

/// Lossless drain-mode service config: deep queues and drain make the
/// committed set a pure function of the arrival schedule, so
/// byte-equality against the fault-free run is the exactly-once oracle.
fn service_cfg(seed: u64) -> ShardedServiceConfig {
    ShardedServiceConfig {
        shards: DEFAULT_SHARDS,
        arrival_rate: DEFAULT_OFFERED,
        duration: DEFAULT_DURATION,
        queue_capacity: 1 << 20,
        drain: true,
        policy: ShardEnginePolicy::Fixed(ServiceEngine::Hash),
        seed,
        ..Default::default()
    }
}

/// A hot tenant pinned to shard 0 next to a cold one on shard 1, with
/// the planner allowed to move slots — the skew keeps live migration in
/// the fault mix. Both tenants are guaranteed-class, so any loss at all
/// is a guaranteed-class loss.
fn tenancy() -> TenancyConfig {
    TenancyConfig {
        reshard: Some(ReshardPolicy {
            tick: 5.0e-5,
            min_imbalance: 32,
            max_migrations: 2,
        }),
        ..TenancyConfig::new(vec![
            TenantSpec {
                streams: 2,
                shard_set: vec![0],
                ..TenantSpec::new("hot", QosClass::Guaranteed, 0.875)
            },
            TenantSpec {
                shard_set: vec![1],
                ..TenantSpec::new("cold", QosClass::Guaranteed, 0.125)
            },
        ])
    }
}

fn run_service(seed: u64, ft: Option<FaultTolerance>) -> (Vec<Vec<u64>>, ServiceMetrics) {
    let mut svc = ShardedMatchService::with_tenancy(
        GpuGeneration::PascalGtx1080,
        service_cfg(seed),
        tenancy(),
    );
    svc.set_record_completions(true);
    svc.set_fault_tolerance(ft);
    let r = svc.run();
    (r.completions.expect("recording was enabled"), r.metrics)
}

/// Every fault class the scheduler knows, at `scale` expected events
/// each over the run.
fn chaos_rates(scale: f64) -> FaultRates {
    let per_class = scale / DEFAULT_DURATION;
    FaultRates {
        crash_rate: per_class,
        hang_rate: per_class,
        slow_rate: per_class,
        partition_rate: per_class,
        corrupt_rate: per_class,
        ..Default::default()
    }
}

fn chaos_ft(seed: u64, scale: f64) -> FaultTolerance {
    FaultTolerance {
        plan: FaultPlan::random(
            seed.wrapping_mul(0x9E37_79B9).wrapping_add(17),
            DEFAULT_SHARDS,
            DEFAULT_DURATION,
            &chaos_rates(scale),
        ),
        recovery: RecoveryConfig::default(),
        supervisor: Some(SupervisorConfig::default()),
    }
}

/// Per-packet and link-lifecycle faults composed; probabilities scale
/// with intensity but stay well under certainty so every run quiesces.
fn chaotic_wire(seed: u64, scale: f64) -> FabricConfig {
    let p = |base: f64| (base * scale).min(0.25);
    FabricConfig {
        seed,
        order: DeliveryOrder::PerPairFifo,
        // A small, flat retransmit budget: exhaustion completes inside
        // a down window (parking, notifying `LinkDown`, healing later)
        // instead of backing off past every lifecycle fault.
        retransmit_timeout_ns: 3_000,
        backoff: 1,
        max_retransmits: 12,
        fault: FaultConfig {
            drop_prob: p(0.04),
            duplicate_prob: p(0.02),
            reorder_prob: p(0.15),
            // Keep the skew under the exhaustion budget (12 × 3µs):
            // a reordered delivery burns retransmits while it is in
            // flight, and a skew past the budget would kill healthy
            // packets instead of exercising the reorder buffer.
            reorder_skew_ns: 8_000,
            corrupt_prob: p(0.04),
        },
        // Down windows outlast the full retransmit budget (12 × 3µs)
        // so a packet first sent into a window exhausts *inside* it —
        // that is what parks it and raises the structured `LinkDown`.
        link_fault: LinkFaultConfig {
            flap_period_ns: 60_000,
            flap_prob: p(0.2),
            flap_down_ns: 45_000,
            partition_period_ns: 100_000,
            partition_prob: p(0.25),
            partition_down_ns: 60_000,
        },
        ..Default::default()
    }
}

/// Drive the fixed all-to-all mix (sizes straddle the eager threshold)
/// and return every channel's delivered payloads in delivery order.
fn fabric_channels(
    cfg: FabricConfig,
    ranks: u32,
    msgs_per_pair: u32,
) -> (BTreeMap<(u32, u32), Vec<Bytes>>, fabric::FabricStats) {
    let mut net = Fabric::new(ranks, cfg);
    for m in 0..msgs_per_pair {
        for src in 0..ranks {
            for dst in 0..ranks {
                if src == dst {
                    continue;
                }
                let len = if m % 2 == 0 { 64 } else { 2_048 };
                let fill = (src * 31 + dst * 7 + m) as u8;
                net.send(
                    src,
                    dst,
                    Envelope::new(src, m, 0),
                    Bytes::from(vec![fill; len]),
                );
            }
        }
    }
    net.run_until_quiescent(60_000_000_000)
        .expect("a chaotic wire must still quiesce — link windows heal");
    let mut channels: BTreeMap<(u32, u32), Vec<Bytes>> = BTreeMap::new();
    for dst in 0..ranks {
        for d in net.take_deliveries(dst) {
            channels.entry((d.src, d.dst)).or_default().push(d.payload);
        }
    }
    (channels, net.stats())
}

fn run_point(cfg: &SweepConfig, scale: f64, seed: u64) -> ChaosPoint {
    // Service layer: fault-free oracle, then the same seed under chaos.
    let (want, _) = run_service(seed, None);
    let (got, m) = run_service(seed, Some(chaos_ft(seed, scale)));
    let exactly_once_violations = if got.len() != want.len() {
        got.len().abs_diff(want.len()) as u64
    } else {
        got.iter().zip(&want).filter(|(g, w)| g != w).count() as u64
    };
    let fifo_violations = got
        .iter()
        .filter(|stream| stream.iter().enumerate().any(|(i, &s)| s != i as u64))
        .count() as u64;
    let committed = |c: &Vec<Vec<u64>>| c.iter().map(Vec::len).sum::<usize>() as u64;
    let guaranteed_lost = committed(&want).saturating_sub(committed(&got));

    // Fabric layer: clean-wire oracle against the chaotic wire.
    let clean = FabricConfig {
        seed,
        order: DeliveryOrder::PerPairFifo,
        ..Default::default()
    };
    let (want_ch, _) = fabric_channels(clean, cfg.ranks, cfg.msgs_per_pair);
    let (got_ch, fs) = fabric_channels(chaotic_wire(seed, scale), cfg.ranks, cfg.msgs_per_pair);
    let fabric_channel_mismatches = want_ch
        .iter()
        .filter(|(ch, payloads)| got_ch.get(ch) != Some(payloads))
        .count() as u64
        + got_ch.keys().filter(|ch| !want_ch.contains_key(ch)).count() as u64;

    let sum = |f: fn(&gpu_msg::ShardMetrics) -> u64| m.shards.iter().map(f).sum::<u64>();
    let violations = exactly_once_violations
        + fifo_violations
        + guaranteed_lost
        + fabric_channel_mismatches
        + u64::from(fs.messages_delivered != fs.messages_sent);
    ChaosPoint {
        scale,
        seed,
        crashes: m.total_crashes,
        hangs: sum(|s| s.hangs),
        partitions: sum(|s| s.partitions),
        corrupt_checkpoints: sum(|s| s.corrupt_checkpoints),
        snapshot_fallbacks: sum(|s| s.snapshot_fallbacks),
        fenced_commits: sum(|s| s.fenced_commits),
        recoveries: m.total_recoveries,
        failovers: m.total_failovers,
        migrations: m.total_migrations,
        journal_replayed: sum(|s| s.journal_replayed),
        replay_duplicates: sum(|s| s.replay_duplicates),
        matched: m.total_matched,
        exactly_once_violations,
        fifo_violations,
        guaranteed_lost,
        fabric_messages: fs.messages_sent,
        fabric_delivered: fs.messages_delivered,
        fabric_retransmits: fs.retransmits,
        fabric_drops: fs.drops_injected,
        fabric_corruptions: fs.corruptions_injected,
        fabric_link_down_drops: fs.link_down_drops,
        fabric_parked: fs.parked_packets,
        fabric_link_downs: fs.link_down_events,
        fabric_link_heals: fs.link_heal_events,
        fabric_channel_mismatches,
        violations,
    }
}

/// Run the sweep: scale major, seed minor.
pub fn run(cfg: &SweepConfig) -> ChaosBench {
    let points: Vec<ChaosPoint> = cfg
        .scales
        .iter()
        .flat_map(|&scale| cfg.seeds.iter().map(move |&seed| (scale, seed)))
        .map(|(scale, seed)| run_point(cfg, scale, seed))
        .collect();
    let total_violations = points.iter().map(|p| p.violations).sum();
    ChaosBench {
        shards: DEFAULT_SHARDS as u64,
        offered_rate: DEFAULT_OFFERED,
        duration: DEFAULT_DURATION,
        ranks: cfg.ranks,
        msgs_per_pair: cfg.msgs_per_pair,
        points,
        total_violations,
    }
}

/// Render the sweep as a table.
pub fn report(r: &ChaosBench) -> Report {
    let mut rep = Report::new(
        format!(
            "Chaos sweep: composed faults, hash@{}shards+reshard {:.0} M msgs/s / {} ranks all-to-all",
            r.shards,
            r.offered_rate / 1e6,
            r.ranks
        ),
        &[
            "scale",
            "seed",
            "crash",
            "hang",
            "part",
            "ckpt_corr",
            "fenced",
            "migr",
            "retx",
            "link_down",
            "parked",
            "viol",
        ],
    );
    for p in &r.points {
        rep.push(vec![
            format!("{:.1}", p.scale),
            p.seed.to_string(),
            p.crashes.to_string(),
            p.hangs.to_string(),
            p.partitions.to_string(),
            p.corrupt_checkpoints.to_string(),
            p.fenced_commits.to_string(),
            p.migrations.to_string(),
            p.fabric_retransmits.to_string(),
            p.fabric_link_downs.to_string(),
            p.fabric_parked.to_string(),
            p.violations.to_string(),
        ]);
    }
    rep
}

/// Serialize the artefact (pretty JSON, byte-deterministic per seed).
pub fn to_json(r: &ChaosBench) -> String {
    serde::json::to_string_pretty(r)
}

/// Parse an artefact back (CI schema validation).
///
/// # Errors
/// Malformed JSON or a mismatched schema.
pub fn from_json(s: &str) -> Result<ChaosBench, String> {
    serde::json::from_str(s).map_err(|e| format!("BENCH_chaos.json does not parse: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_holds_every_invariant_and_keeps_its_teeth() {
        let r = run(&SweepConfig::smoke());
        assert_eq!(r.total_violations, 0, "invariants must hold: {r:?}");
        let sum = |f: fn(&ChaosPoint) -> u64| r.points.iter().map(f).sum::<u64>();
        for (class, total) in [
            ("crash", sum(|p| p.crashes)),
            ("hang", sum(|p| p.hangs)),
            ("partition", sum(|p| p.partitions)),
            ("checkpoint corruption", sum(|p| p.corrupt_checkpoints)),
            ("migration", sum(|p| p.migrations)),
            ("recovery", sum(|p| p.recoveries)),
            ("wire corruption", sum(|p| p.fabric_corruptions)),
            ("link down", sum(|p| p.fabric_link_downs)),
            ("link heal", sum(|p| p.fabric_link_heals)),
            ("retransmit", sum(|p| p.fabric_retransmits)),
        ] {
            assert!(total > 0, "sweep has no teeth: no {class} landed");
        }
        for p in &r.points {
            assert_eq!(p.fabric_delivered, p.fabric_messages, "{p:?}");
            assert_eq!(p.recoveries, p.crashes, "every crash must recover: {p:?}");
        }
    }

    #[test]
    fn artefact_roundtrips_and_is_deterministic() {
        let cfg = SweepConfig {
            scales: vec![1.0],
            seeds: vec![5],
            ..SweepConfig::smoke()
        };
        let a = to_json(&run(&cfg));
        let b = to_json(&run(&cfg));
        assert_eq!(a, b, "same seeds must produce a byte-identical artefact");
        let parsed = from_json(&a).expect("roundtrip");
        assert_eq!(parsed.points.len(), 1);
        let c = to_json(&run(&SweepConfig {
            seeds: vec![9],
            ..cfg
        }));
        assert_ne!(a, c, "a different seed must show up in the artefact");
    }
}
