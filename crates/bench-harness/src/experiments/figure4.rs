//! Figure 4: single-CTA matching rate of the MPI-compliant matrix
//! algorithm vs. queue length, on all three GPU generations.
//!
//! Workload as in Section V-B: random tuples in random order, every
//! message has a matching receive, nothing is left after matching.
//! Expected shape: a steady rate per generation (K80 ≈ 3 M, M40 ≈ 3.5 M,
//! GTX 1080 ≈ 6 M matches/s), ordered by clock rate, with a drop at 1024
//! where all 32 warps are needed for the scan and the reduce can no
//! longer be overlapped.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Device generation.
    pub generation: GpuGeneration,
    /// Queue length (messages = receives).
    pub len: usize,
    /// Matching rate in matches/s.
    pub matches_per_sec: f64,
    /// Simulated kernel cycles.
    pub cycles: u64,
}

/// Queue lengths the paper's figure sweeps.
pub const DEFAULT_LENS: [usize; 9] = [16, 32, 64, 128, 256, 512, 768, 992, 1024];

/// Run the sweep.
pub fn run(lens: &[usize], seed: u64) -> Vec<Point> {
    let mut points = Vec::new();
    for &len in lens {
        let w = WorkloadSpec::fully_matching(len, seed).generate();
        for generation in GpuGeneration::ALL {
            let mut gpu = Gpu::new(generation);
            let r = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
            assert_eq!(
                r.matches as usize, len,
                "fully-matching workload must fully match"
            );
            points.push(Point {
                generation,
                len,
                matches_per_sec: r.matches_per_sec,
                cycles: r.cycles,
            });
        }
    }
    points
}

/// Render the sweep as the figure's data table.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "Figure 4: MPI-compliant matrix matching rate [M matches/s], single CTA",
        &["queue_len", "K80", "M40", "GTX1080"],
    );
    let mut lens: Vec<usize> = points.iter().map(|p| p.len).collect();
    lens.dedup();
    for len in lens {
        let cell = |g: GpuGeneration| -> String {
            points
                .iter()
                .find(|p| p.len == len && p.generation == g)
                .map(|p| fmt_mps(p.matches_per_sec))
                .unwrap_or_default()
        };
        r.push(vec![
            len.to_string(),
            cell(GpuGeneration::KeplerK80),
            cell(GpuGeneration::MaxwellM40),
            cell(GpuGeneration::PascalGtx1080),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let pts = run(&[256, 512, 992, 1024], 7);
        let get = |g: GpuGeneration, l: usize| {
            pts.iter()
                .find(|p| p.generation == g && p.len == l)
                .unwrap()
                .matches_per_sec
        };
        // Generation ordering at 512.
        let (k, m, p) = (
            get(GpuGeneration::KeplerK80, 512),
            get(GpuGeneration::MaxwellM40, 512),
            get(GpuGeneration::PascalGtx1080, 512),
        );
        assert!(
            k < m && m < p,
            "newer generations must be faster: {k} {m} {p}"
        );
        // Paper bands: ~3 / ~3.5 / ~6 M matches/s.
        assert!((2.0e6..4.5e6).contains(&k), "K80 {k}");
        assert!((2.5e6..5.0e6).contains(&m), "M40 {m}");
        assert!((4.5e6..8.0e6).contains(&p), "GTX1080 {p}");
        // Steady between 256 and 992 (within 25%).
        let ratio = get(GpuGeneration::PascalGtx1080, 256) / get(GpuGeneration::PascalGtx1080, 992);
        assert!(
            (0.75..1.35).contains(&ratio),
            "rate must be steady, ratio {ratio}"
        );
        // Drop at 1024 (pipelining lost).
        assert!(
            get(GpuGeneration::PascalGtx1080, 1024) < get(GpuGeneration::PascalGtx1080, 992) * 0.92,
            "1024 must drop below 992"
        );
    }

    #[test]
    fn report_renders() {
        let pts = run(&[64], 1);
        let rep = report(&pts);
        assert_eq!(rep.rows.len(), 1);
        assert!(rep.to_text().contains("Figure 4"));
    }
}
