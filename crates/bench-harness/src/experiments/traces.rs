//! Shared trace-analysis driver for Table I, Figure 2 and Figure 6(a):
//! generates every proxy application's synthetic trace (through the SDTF
//! serialisation round trip, so the full pipeline is exercised) and
//! analyses it.

use proxy_traces::{analyze, generate, read_trace, write_trace, AppAnalysis, AppModel, GenOptions};

use crate::table::Report;

/// Analyse all twelve applications at the given depth scale (1.0 = the
/// paper's reported queue depths).
pub fn analyze_all(depth_scale: f64, seed: u64) -> Vec<(AppModel, AppAnalysis)> {
    AppModel::all()
        .into_iter()
        .map(|model| {
            let trace = generate(
                &model,
                GenOptions {
                    depth_scale,
                    ranks: None,
                    seed,
                    rank0_funnel: 0,
                },
            );
            // Round-trip through the on-disk format, as a dumpi-based
            // pipeline would.
            let bytes = write_trace(&trace);
            let trace = read_trace(bytes).expect("self-written trace must parse");
            let a = analyze(&trace);
            (model, a)
        })
        .collect()
}

/// Table I: application communication characteristics.
pub fn table1(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Table I: proxy application characteristics",
        &[
            "application",
            "suite",
            "ranks",
            "peers(med)",
            "comms",
            "tags",
            "tag_bits",
            "src_wild",
            "tag_wild",
            "msgs",
        ],
    );
    for (model, a) in analyses {
        r.push(vec![
            model.name.to_string(),
            model.suite.label().to_string(),
            a.ranks.to_string(),
            format!("{:.0}", a.peers.median),
            a.communicators.to_string(),
            a.distinct_tags.to_string(),
            a.tag_bits().to_string(),
            a.src_wildcards.to_string(),
            a.tag_wildcards.to_string(),
            a.messages.to_string(),
        ]);
    }
    r
}

/// Figure 2: UMQ maximum-depth distribution across ranks, per app.
pub fn figure2(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Figure 2: UMQ length distribution across ranks",
        &["application", "min", "q1", "median", "mean", "q3", "max"],
    );
    for (model, a) in analyses {
        let d = &a.umq_depth;
        r.push(vec![
            model.name.to_string(),
            format!("{:.0}", d.min),
            format!("{:.0}", d.q1),
            format!("{:.0}", d.median),
            format!("{:.0}", d.mean),
            format!("{:.0}", d.q3),
            format!("{:.0}", d.max),
        ]);
    }
    r
}

/// The PRQ companion distribution (the paper omits the plot "due to
/// their similarity" — we print it to show the similarity).
pub fn figure2_prq(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Figure 2 (companion): PRQ length distribution across ranks",
        &["application", "min", "q1", "median", "mean", "q3", "max"],
    );
    for (model, a) in analyses {
        let d = &a.prq_depth;
        r.push(vec![
            model.name.to_string(),
            format!("{:.0}", d.min),
            format!("{:.0}", d.q1),
            format!("{:.0}", d.median),
            format!("{:.0}", d.mean),
            format!("{:.0}", d.q3),
            format!("{:.0}", d.max),
        ]);
    }
    r
}

/// Figure 6(a): {src, tag} tuple uniqueness per application.
pub fn figure6a(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Figure 6(a): most-common {src,tag} tuple share per destination [%]",
        &["application", "uniqueness_pct", "hash_friendly"],
    );
    for (model, a) in analyses {
        r.push(vec![
            model.name.to_string(),
            format!("{:.2}", a.tuple_uniqueness_pct),
            if a.tuple_uniqueness_pct < 10.0 {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    r
}

/// Section VI-A/VII feasibility companion: peer-usage regularity per app
/// ("multiple queues is only efficient if queues are evenly used").
pub fn queue_usage(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Section VI-A: peer-usage regularity (busiest peer / fair share)",
        &["application", "imbalance(med)", "regular", "usable_queues"],
    );
    for (model, a) in analyses {
        let regular = a.peer_imbalance.median < 2.0;
        r.push(vec![
            model.name.to_string(),
            format!("{:.2}", a.peer_imbalance.median),
            if regular { "yes" } else { "no" }.to_string(),
            format!("{:.0}", a.peers.median),
        ]);
    }
    r
}

/// Section VII as a table: the deepest relaxation each application
/// tolerates and the engine that buys, derived from its own trace.
pub fn recommendations(analyses: &[(AppModel, AppAnalysis)]) -> Report {
    let mut r = Report::new(
        "Section VII: recommended configuration per application",
        &[
            "application",
            "wildcards",
            "hash_friendly",
            "recommendation",
        ],
    );
    for (model, a) in analyses {
        let wild = a.src_wildcards > 0 || a.tag_wildcards > 0;
        let hashable = a.tuple_uniqueness_pct < 10.0;
        let rec = if wild {
            "compliant matrix (or drop ANY_SOURCE at init)".to_string()
        } else if hashable {
            "hash table under BSP tag discipline (~500 M class)".to_string()
        } else {
            format!("{:.0} partitioned queues (~60 M class)", a.peers.median)
        };
        r.push(vec![
            model.name.to_string(),
            if wild { "yes" } else { "no" }.to_string(),
            if hashable { "yes" } else { "no" }.to_string(),
            rec,
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<(AppModel, AppAnalysis)> {
        // Reduced scale keeps the suite fast; shape assertions use
        // scale-aware bounds.
        analyze_all(0.2, 99)
    }

    #[test]
    fn table1_reproduces_paper_facts() {
        let analyses = small();
        let by = |n: &str| -> &AppAnalysis {
            &analyses
                .iter()
                .find(|(m, _)| m.name == n)
                .unwrap_or_else(|| panic!("{n} missing from the trace analyses"))
                .1
        };
        // Wildcards: only MiniDFT and MiniFE, src only.
        for (m, a) in &analyses {
            if m.name == "MiniDFT" || m.name == "MiniFE" {
                assert!(a.src_wildcards > 0, "{}", m.name);
            } else {
                assert_eq!(a.src_wildcards, 0, "{}", m.name);
            }
            assert_eq!(a.tag_wildcards, 0, "{}", m.name);
            assert!(a.tag_bits() <= 16, "{}", m.name);
        }
        // Communicators.
        assert_eq!(by("Nekbone").communicators, 2);
        assert_eq!(by("MiniDFT").communicators, 7);
        assert_eq!(by("LULESH").communicators, 1);
        // Peer extremes: AMG and CNS spread widest.
        assert!(by("AMG").peers.median >= 60.0);
        assert!(by("CNS").peers.median >= 55.0);
        assert!(by("Nekbone").peers.median <= 25.0);
    }

    #[test]
    fn figure2_outliers_are_multigrid_and_nekbone() {
        let analyses = small();
        let mean = |n: &str| {
            analyses
                .iter()
                .find(|(m, _)| m.name == n)
                .unwrap_or_else(|| panic!("{n} missing from the trace analyses"))
                .1
                .umq_depth
                .mean
        };
        // At scale 0.2 the paper's 512 threshold becomes ~102.
        for (m, a) in &analyses {
            match m.name {
                "MultiGrid" | "Nekbone" => {
                    assert!(a.umq_depth.mean > 200.0, "{} too shallow", m.name)
                }
                _ => assert!(a.umq_depth.mean < 102.4, "{} too deep", m.name),
            }
        }
        assert!(mean("Nekbone") > mean("MultiGrid") * 1.2);
        // Nekbone's skew: mean well above median.
        let nek = &analyses
            .iter()
            .find(|(m, _)| m.name == "Nekbone")
            .expect("Nekbone missing from the trace analyses")
            .1;
        assert!(
            nek.umq_depth.mean > nek.umq_depth.median * 1.5,
            "Nekbone must be long-tailed: mean {} median {}",
            nek.umq_depth.mean,
            nek.umq_depth.median
        );
    }

    #[test]
    fn figure6a_mostly_single_digit() {
        let analyses = small();
        let single_digit = analyses
            .iter()
            .filter(|(_, a)| a.tuple_uniqueness_pct < 10.0)
            .count();
        assert!(
            single_digit >= 8,
            "most applications must be hash friendly, got {single_digit}/12"
        );
        // Nekbone (1 tag, skewed peers) must be among the bad cases.
        let nek = &analyses
            .iter()
            .find(|(m, _)| m.name == "Nekbone")
            .expect("Nekbone missing from the trace analyses")
            .1;
        assert!(
            nek.tuple_uniqueness_pct > 10.0,
            "Nekbone should be collision heavy, got {:.2}%",
            nek.tuple_uniqueness_pct
        );
    }

    #[test]
    fn reports_render() {
        let analyses = small();
        assert_eq!(table1(&analyses).rows.len(), 12);
        assert_eq!(figure2(&analyses).rows.len(), 12);
        assert_eq!(figure2_prq(&analyses).rows.len(), 12);
        assert_eq!(figure6a(&analyses).rows.len(), 12);
        assert_eq!(queue_usage(&analyses).rows.len(), 12);
        assert_eq!(recommendations(&analyses).rows.len(), 12);
    }

    #[test]
    fn recommendations_follow_the_paper() {
        let analyses = small();
        let rec = recommendations(&analyses);
        let row = |name: &str| {
            rec.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert!(row("MiniDFT")[3].contains("compliant"), "wildcard app");
        assert!(
            row("Nekbone")[3].contains("partitioned"),
            "hash-hostile app"
        );
        assert!(row("LULESH")[3].contains("hash"), "BSP-friendly app");
    }

    #[test]
    fn queue_usage_flags_the_irregular_apps() {
        let analyses = small();
        let usage = queue_usage(&analyses);
        let regular = |name: &str| {
            usage
                .rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[2].clone())
                .unwrap_or_else(|| panic!("{name} missing from the queue-usage table"))
        };
        assert_eq!(regular("Nekbone"), "no");
        assert_eq!(regular("LULESH"), "yes");
        assert_eq!(regular("CNS"), "yes");
    }
}
