//! Sustained message-rate ceilings: the service model sweeping offered
//! load per engine — the operational restatement of the paper's
//! motivation ("message matching becomes a major limiter for high
//! message rates").

use gpu_msg::{simulate_service, ServiceConfig, ServiceEngine, ServiceReport};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Engine.
    pub engine: ServiceEngine,
    /// Offered load, messages/s.
    pub offered: f64,
    /// Outcome.
    pub report: ServiceReport,
}

/// Offered loads swept (messages/s).
pub const DEFAULT_LOADS: [f64; 5] = [1.0e6, 4.0e6, 16.0e6, 64.0e6, 256.0e6];

/// Run the sweep on the GTX 1080.
pub fn run(loads: &[f64], seed: u64) -> Vec<Point> {
    let engines = [
        ServiceEngine::Matrix,
        ServiceEngine::Partitioned(16),
        ServiceEngine::Hash,
    ];
    let mut out = Vec::new();
    for &engine in &engines {
        for &offered in loads {
            let report = simulate_service(
                GpuGeneration::PascalGtx1080,
                ServiceConfig {
                    arrival_rate: offered,
                    max_batch: 1024,
                    batch_threshold: 256,
                    queue_capacity: 1 << 14,
                    duration: 0.002,
                    engine,
                    seed,
                },
            );
            out.push(Point {
                engine,
                offered,
                report,
            });
        }
    }
    out
}

fn engine_name(e: ServiceEngine) -> &'static str {
    match e {
        ServiceEngine::Matrix => "matrix (full MPI)",
        ServiceEngine::Partitioned(_) => "partitioned x16",
        ServiceEngine::Hash => "hash (unordered)",
    }
}

/// Render the sweep.
pub fn report(points: &[Point]) -> Report {
    let mut r = Report::new(
        "Sustained service: offered vs sustained rate [M msgs/s], GTX 1080 comm kernel",
        &[
            "engine",
            "offered",
            "sustained",
            "util_%",
            "max_depth",
            "saturated",
        ],
    );
    for p in points {
        r.push(vec![
            engine_name(p.engine).to_string(),
            format!("{:.0}", p.offered / 1e6),
            format!("{:.2}", p.report.sustained_rate / 1e6),
            format!("{:.0}", p.report.utilisation * 100.0),
            p.report.max_depth.to_string(),
            if p.report.saturated { "YES" } else { "no" }.to_string(),
        ]);
    }
    r
}

/// Batch-aggregation ablation: the kernel's batching threshold trades
/// queueing delay against per-launch efficiency. Tiny thresholds waste
/// the wide matchers; oversized thresholds only add latency.
pub fn threshold_ablation(offered: f64, thresholds: &[usize], seed: u64) -> Report {
    let mut r = Report::new(
        format!(
            "Ablation: comm-kernel batch threshold at {:.0} M msgs/s offered (matrix engine)",
            offered / 1e6
        ),
        &[
            "threshold",
            "sustained_M",
            "util_%",
            "mean_depth",
            "batches",
        ],
    );
    for &t in thresholds {
        let rep = simulate_service(
            GpuGeneration::PascalGtx1080,
            ServiceConfig {
                arrival_rate: offered,
                max_batch: 1024,
                batch_threshold: t,
                queue_capacity: 1 << 14,
                duration: 0.002,
                engine: ServiceEngine::Matrix,
                seed,
            },
        );
        r.push(vec![
            t.to_string(),
            format!("{:.2}", rep.sustained_rate / 1e6),
            format!("{:.0}", rep.utilisation * 100.0),
            format!("{:.0}", rep.mean_depth),
            rep.batches.to_string(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_ablation_renders_and_batches_fall_with_threshold() {
        let rep = threshold_ablation(2.0e6, &[32, 512], 5);
        assert_eq!(rep.rows.len(), 2);
        let batches = |i: usize| {
            rep.rows[i][4]
                .parse::<u64>()
                .unwrap_or_else(|e| panic!("batches column of row {i} must be an integer: {e}"))
        };
        assert!(batches(0) > batches(1), "bigger threshold, fewer batches");
    }

    #[test]
    fn ceilings_are_ordered_like_the_relaxations() {
        let pts = run(&[16.0e6], 5);
        let by = |e: &str| {
            pts.iter()
                .find(|p| engine_name(p.engine) == e)
                .unwrap_or_else(|| panic!("sweep is missing engine {e:?}"))
                .report
        };
        // 16 M msgs/s: far beyond the compliant matcher, fine for the
        // relaxed engines.
        assert!(by("matrix (full MPI)").saturated);
        assert!(!by("partitioned x16").saturated);
        assert!(!by("hash (unordered)").saturated);
    }
}
