//! Experiment drivers — one module per table/figure of the paper.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`traces`] | Table I, Figure 2, Figure 6(a) |
//! | [`figure4`] | Figure 4 (compliant matrix matcher sweep) |
//! | [`figure5`] | Figure 5 (rank-partitioned sweep) |
//! | [`figure6b`] | Figure 6(b) (hash matcher sweep) |
//! | [`table2`] | Table II (relaxation lattice, measured) |
//! | [`cpu_baseline`] | Section II-C CPU rates |
//! | [`unexpected`] | Section VI-B (compaction, match fraction) |
//! | [`ablations`] | pipelining, window size, long-queue order, hash design |
//! | [`profile`] | Section VII-C architectural profile |
//! | [`saturation`] | sustained message-rate ceilings (service model) |
//! | [`scaling`] | rank-0 hotspot depth scaling (related-work check) |
//! | [`shard_scaling`] | sharded service: sustained rate vs shards × engine |
//! | [`recovery_scaling`] | fault tolerance: crash rate × checkpoint interval |
//! | [`obs_report`] | traced service run: span timeline, exposition, stalls |
//! | [`prefilter`] | pre-filter screen: unexpected ratio × depth, on vs off |
//! | [`fabric_scaling`] | simulated interconnect: eager threshold × loss × skew |
//! | [`tenancy_scaling`] | multi-tenant QoS: Zipf tenants × shards, isolation, resharding |
//! | [`chaos`] | cross-layer chaos: composed faults, end-to-end invariant checker |

pub mod ablations;
pub mod chaos;
pub mod cpu_baseline;
pub mod fabric_scaling;
pub mod figure4;
pub mod figure5;
pub mod figure6b;
pub mod obs_report;
pub mod prefilter;
pub mod profile;
pub mod recovery_scaling;
pub mod saturation;
pub mod scaling;
pub mod shard_scaling;
pub mod table2;
pub mod tenancy_scaling;
pub mod traces;
pub mod unexpected;
