//! Figure 6(b): hash-table matching rate under the no-ordering
//! relaxation, vs. element count and CTA count, on all three generations.
//!
//! Expected shape: two orders of magnitude above the compliant matcher —
//! ~110–150 M matches/s on Kepler, ~500 M on the GTX 1080 (a 3.3×
//! Kepler→Pascal gap, driven by clock *and* the atomic-throughput
//! improvements), with modest sensitivity to the CTA count because the
//! SM serialises beyond its residency limit.

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Device generation.
    pub generation: GpuGeneration,
    /// Elements matched (messages = requests).
    pub len: usize,
    /// CTAs launched.
    pub ctas: u32,
    /// Matching rate.
    pub matches_per_sec: f64,
    /// Refinement iterations the batch needed.
    pub launches: u32,
}

/// Element counts swept.
pub const DEFAULT_LENS: [usize; 5] = [256, 1024, 2048, 4096, 8192];
/// CTA counts swept (the paper reports 1 and 32).
pub const DEFAULT_CTAS: [u32; 4] = [1, 4, 16, 32];

/// Run the sweep.
pub fn run(lens: &[usize], ctas: &[u32], seed: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for &len in lens {
        let w = WorkloadSpec::unique_tuples(len, seed).generate();
        for &c in ctas {
            for generation in GpuGeneration::ALL {
                let mut gpu = Gpu::new(generation);
                let r = HashMatcher::with_ctas(c)
                    .match_batch(&mut gpu, &w.msgs, &w.reqs)
                    .expect("no wildcards in unique-tuple workload");
                assert_eq!(r.matches as usize, len, "unique tuples must fully match");
                out.push(Point {
                    generation,
                    len,
                    ctas: c,
                    matches_per_sec: r.matches_per_sec,
                    launches: r.launches,
                });
            }
        }
    }
    out
}

/// Render one generation's slice.
pub fn report(points: &[Point], generation: GpuGeneration) -> Report {
    let mut r = Report::new(
        format!(
            "Figure 6(b): hash-table matching rate [M matches/s], {}",
            generation.device_name()
        ),
        &["elements", "1 CTA", "4 CTAs", "16 CTAs", "32 CTAs"],
    );
    let mut lens: Vec<usize> = points.iter().map(|p| p.len).collect();
    lens.sort_unstable();
    lens.dedup();
    for len in lens {
        let mut row = vec![len.to_string()];
        for c in DEFAULT_CTAS {
            let cell = points
                .iter()
                .find(|p| p.len == len && p.ctas == c && p.generation == generation)
                .map(|p| fmt_mps(p.matches_per_sec))
                .unwrap_or_default();
            row.push(cell);
        }
        r.push(row);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_land_in_paper_bands() {
        let pts = run(&[1024], &[1], 5);
        let get = |g: GpuGeneration| {
            pts.iter()
                .find(|p| p.generation == g)
                .unwrap()
                .matches_per_sec
        };
        let k = get(GpuGeneration::KeplerK80);
        let p = get(GpuGeneration::PascalGtx1080);
        // Paper: 110–150 M on Kepler, ~500 M on Pascal.
        assert!((90.0e6..200.0e6).contains(&k), "K80 {k}");
        assert!((350.0e6..650.0e6).contains(&p), "GTX1080 {p}");
        // Kepler→Pascal ≈ 3.3×.
        let ratio = p / k;
        assert!((2.2..4.5).contains(&ratio), "Pascal/Kepler ratio {ratio}");
    }

    #[test]
    fn hash_dwarfs_the_compliant_matcher() {
        // The headline 80× claim (Pascal, ~6 M → ~500 M).
        let w = WorkloadSpec::unique_tuples(1024, 9).generate();
        let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
        let hash = HashMatcher::default()
            .match_batch(&mut gpu, &w.msgs, &w.reqs)
            .unwrap();
        let matrix = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
        let speedup = hash.matches_per_sec / matrix.matches_per_sec;
        assert!(
            (40.0..140.0).contains(&speedup),
            "out-of-order speedup should be ~80×, got {speedup:.0}×"
        );
    }

    #[test]
    fn report_renders_per_generation() {
        let pts = run(&[256], &[1, 4, 16, 32], 1);
        let rep = report(&pts, GpuGeneration::MaxwellM40);
        assert_eq!(rep.rows.len(), 1);
        assert!(rep.to_text().contains("M40"));
    }
}
