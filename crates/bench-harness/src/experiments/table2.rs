//! Table II: the relaxation lattice with *measured* matching rates on the
//! GTX 1080 — which guarantees are kept, which engine that buys, what it
//! costs the user, and what it delivers.

use msg_match::compaction::compact_queue_regions;
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// One measured lattice row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The semantics configuration.
    pub config: RelaxationConfig,
    /// Engine used.
    pub structure: DataStructure,
    /// Partitioning possible?
    pub partitionable: bool,
    /// Measured matches/s at 1024 entries on the GTX 1080.
    pub matches_per_sec: f64,
    /// User implication class.
    pub user: UserImplication,
}

/// Measure all six rows at `len` entries.
pub fn run(len: usize, seed: u64) -> Vec<Row> {
    RelaxationConfig::TABLE_II_ROWS
        .iter()
        .map(|&config| {
            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            // Workload: with unexpected messages allowed, 10% of arrivals
            // find no receive and the queues need compaction afterwards;
            // without, everything is pre-covered and compaction is skipped.
            let match_pct = if config.unexpected { 90 } else { 100 };
            let spec = if config.ordering {
                WorkloadSpec {
                    len,
                    match_pct,
                    src_wildcard_pm: if config.wildcards { 20 } else { 0 },
                    seed,
                    ..Default::default()
                }
            } else {
                // Hash rows need collision-free tuples to shine.
                WorkloadSpec {
                    match_pct,
                    ..WorkloadSpec::unique_tuples(len, seed)
                }
            };
            let w = spec.generate();
            config
                .validate_workload(&[], &w.reqs)
                .expect("generated workload must satisfy its own lattice row");

            let (matches, mut cycles, mut seconds) = if !config.ordering {
                let r = HashMatcher::default()
                    .match_batch(&mut gpu, &w.msgs, &w.reqs)
                    .expect("no wildcards");
                (r.matches, r.cycles, r.seconds)
            } else if !config.wildcards {
                let r = PartitionedMatcher::new(16)
                    .match_batch(&mut gpu, &w.msgs, &w.reqs)
                    .expect("no wildcards");
                (r.matches, r.cycles, r.seconds)
            } else {
                let r = MatrixMatcher::default().match_iterative(&mut gpu, &w.msgs, &w.reqs);
                (r.matches, r.cycles, r.seconds)
            };

            // Unexpected messages leave residue: charge the compaction
            // pass over both queues (Section VI-B's ~10%).
            if config.unexpected {
                // Compaction parallelism follows the lattice: a fully
                // ordered queue moves as one chain; partitioning gives a
                // chain per queue; no ordering frees every warp.
                let regions = if !config.ordering {
                    32
                } else if config.partitionable() {
                    16
                } else {
                    1
                };
                let keep_msgs: Vec<u32> = (0..w.msgs.len()).map(|i| (i % 10 == 0) as u32).collect();
                let packed: Vec<u64> = w.msgs.iter().map(Envelope::pack).collect();
                let (_, rep1) = compact_queue_regions(&mut gpu, &packed, &keep_msgs, regions);
                let packed_r: Vec<u64> = w.reqs.iter().map(RecvRequest::pack).collect();
                let (_, rep2) = compact_queue_regions(&mut gpu, &packed_r, &keep_msgs, regions);
                cycles += rep1.cycles + rep2.cycles;
                seconds += rep1.seconds + rep2.seconds;
            }
            let _ = cycles;

            Row {
                config,
                structure: config.data_structure(),
                partitionable: config.partitionable(),
                matches_per_sec: matches as f64 / seconds,
                user: config.user_implication(),
            }
        })
        .collect()
}

/// Render the lattice table.
pub fn report(rows: &[Row]) -> Report {
    let mut r = Report::new(
        "Table II: relaxation summary (measured on simulated GTX 1080, 1024 entries)",
        &[
            "wildcards",
            "ordering",
            "unexp_msgs",
            "partition",
            "structure",
            "M matches/s",
            "user_impact",
        ],
    );
    let yn = |b: bool| if b { "yes" } else { "no" }.to_string();
    for row in rows {
        r.push(vec![
            yn(row.config.wildcards),
            yn(row.config.ordering),
            yn(row.config.unexpected),
            yn(row.partitionable),
            format!("{:?}", row.structure),
            fmt_mps(row.matches_per_sec),
            format!("{:?}", row.user),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_rates_are_ordered_like_the_paper() {
        let rows = run(1024, 17);
        assert_eq!(rows.len(), 6);
        // Row 1 (full MPI) ≈ 6 M; rows 3/4 ≈ 60 M; rows 5/6 ≈ 500 M.
        let full = rows[0].matches_per_sec;
        let part = rows[3].matches_per_sec;
        let hash = rows[5].matches_per_sec;
        assert!((2.0e6..9.0e6).contains(&full), "full MPI {full}");
        assert!((30.0e6..95.0e6).contains(&part), "partitioned {part}");
        assert!((300.0e6..650.0e6).contains(&hash), "hash {hash}");
        assert!(part > full * 5.0, "partitioning must win ~10×");
        assert!(hash > full * 40.0, "hash must win ~80×");
        // "no unexpected" rows beat their "unexpected" siblings.
        assert!(rows[1].matches_per_sec > rows[0].matches_per_sec);
        assert!(rows[3].matches_per_sec > rows[2].matches_per_sec);
        assert!(rows[5].matches_per_sec > rows[4].matches_per_sec);
    }

    #[test]
    fn report_has_six_rows() {
        let rows = run(256, 1);
        assert_eq!(report(&rows).rows.len(), 6);
    }
}
