//! Ablations of the design choices the paper calls out.
//!
//! * **Scan/reduce pipelining** (Section V-A: "both phases can be
//!   pipelined to overlap execution") — on/off across queue lengths.
//! * **Window size** — the matrix tile width trades shared-memory
//!   footprint (occupancy) against pipelining granularity.
//! * **Long queues, ordered vs. reversed** (Section V-B: "While an
//!   ordered queue would yield the same performance as shown in the
//!   graph, a reversed queue would decrease performance").
//! * **Hash-table organisation and load factor** (Section VI-C: "Future
//!   work might further investigate various combinations of hash
//!   functions and collision resolution policies").

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

use crate::table::{fmt_mps, Report};

/// Pipelining on/off across queue lengths (GTX 1080).
pub fn pipelining(lens: &[usize], seed: u64) -> Report {
    let mut rep = Report::new(
        "Ablation: scan/reduce pipelining (GTX 1080) [M matches/s]",
        &["queue_len", "pipelined", "serial", "speedup"],
    );
    for &len in lens {
        let w = WorkloadSpec::fully_matching(len, seed).generate();
        let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
        let on = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
        let off = MatrixMatcher {
            disable_pipelining: true,
            ..Default::default()
        }
        .match_batch(&mut gpu, &w.msgs, &w.reqs);
        rep.push(vec![
            len.to_string(),
            fmt_mps(on.matches_per_sec),
            fmt_mps(off.matches_per_sec),
            format!("{:.2}x", on.matches_per_sec / off.matches_per_sec),
        ]);
    }
    rep
}

/// Window-size sweep for the matrix matcher (GTX 1080).
pub fn window_sweep(len: usize, windows: &[usize], seed: u64) -> Report {
    let mut rep = Report::new(
        format!("Ablation: matrix scan window at {len} entries (GTX 1080)"),
        &["window", "M matches/s", "cycles"],
    );
    let w = WorkloadSpec::fully_matching(len, seed).generate();
    for &window in windows {
        let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
        let r = MatrixMatcher {
            window,
            ..Default::default()
        }
        .match_batch(&mut gpu, &w.msgs, &w.reqs);
        assert_eq!(r.matches as usize, len);
        rep.push(vec![
            window.to_string(),
            fmt_mps(r.matches_per_sec),
            r.cycles.to_string(),
        ]);
    }
    rep
}

/// Receive-queue order for iterative long-queue matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOrder {
    /// Receives posted in message arrival order.
    Ordered,
    /// Receives posted in reverse arrival order (the paper's worst case).
    Reversed,
    /// Receives posted in random order.
    Shuffled,
}

/// Long-queue sweep: rate vs. total length × receive order (GTX 1080).
pub fn long_queues(totals: &[usize], seed: u64) -> Report {
    let mut rep = Report::new(
        "Ablation: long queues (iterative matching), receive-queue order (GTX 1080)",
        &["total_len", "ordered", "reversed", "shuffled", "iters(rev)"],
    );
    for &total in totals {
        let w = WorkloadSpec {
            len: total,
            peers: 64,
            tags: 1 << 12,
            seed,
            ..Default::default()
        }
        .generate();
        let mut cells = vec![total.to_string()];
        let mut rev_iters = 0u32;
        for order in [
            QueueOrder::Ordered,
            QueueOrder::Reversed,
            QueueOrder::Shuffled,
        ] {
            let mut reqs: Vec<RecvRequest> = w
                .msgs
                .iter()
                .map(|m| RecvRequest::exact(m.src, m.tag, 0))
                .collect();
            match order {
                QueueOrder::Ordered => {}
                QueueOrder::Reversed => reqs.reverse(),
                QueueOrder::Shuffled => {
                    // Deterministic shuffle.
                    for i in (1..reqs.len()).rev() {
                        let j = (i * 2_654_435_761) % (i + 1);
                        reqs.swap(i, j);
                    }
                }
            }
            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            let r = MatrixMatcher::default().match_iterative(&mut gpu, &w.msgs, &reqs);
            assert_eq!(r.matches as usize, total, "{order:?} at {total}");
            if order == QueueOrder::Reversed {
                rev_iters = r.launches;
            }
            cells.push(fmt_mps(r.matches_per_sec));
        }
        cells.push(rev_iters.to_string());
        rep.push(cells);
    }
    rep
}

/// Hash-table organisation × duplicate density (GTX 1080).
pub fn hash_design(len: usize, seed: u64) -> Report {
    let mut rep = Report::new(
        format!("Ablation: hash-table design at {len} entries (GTX 1080) [M matches/s]"),
        &["design", "unique_tuples", "16_tuples_only", "iters(dup)"],
    );
    let unique = WorkloadSpec::unique_tuples(len, seed).generate();
    let dup = WorkloadSpec {
        len,
        peers: 4,
        tags: 4,
        seed,
        ..Default::default()
    }
    .generate();
    let designs: Vec<(String, HashMatcher)> = vec![
        ("two-level 5:1 (paper)".into(), HashMatcher::default()),
        ("linear probing ≤4".into(), HashMatcher::linear_probing(4)),
        ("linear probing ≤16".into(), HashMatcher::linear_probing(16)),
        (
            "two-level, load 1.0".into(),
            HashMatcher::with_slots_per_request_x10(10),
        ),
        (
            "two-level, load 0.33".into(),
            HashMatcher::with_slots_per_request_x10(30),
        ),
    ];
    for (name, m) in designs {
        let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
        let ru = m.match_batch(&mut gpu, &unique.msgs, &unique.reqs).unwrap();
        assert_eq!(ru.matches as usize, len, "{name} unique");
        let rd = m.match_batch(&mut gpu, &dup.msgs, &dup.reqs).unwrap();
        assert_eq!(rd.matches as usize, len, "{name} duplicates");
        rep.push(vec![
            name,
            fmt_mps(ru.matches_per_sec),
            fmt_mps(rd.matches_per_sec),
            rd.launches.to_string(),
        ]);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_always_helps_midrange() {
        let rep = pipelining(&[512], 3);
        let row = &rep.rows[0];
        let on: f64 = row[1].parse().unwrap();
        let off: f64 = row[2].parse().unwrap();
        assert!(on > off, "pipelined {on} must beat serial {off}");
    }

    #[test]
    fn reversed_long_queues_are_slower() {
        let rep = long_queues(&[2048], 3);
        let row = &rep.rows[0];
        let ordered: f64 = row[1].parse().unwrap();
        let reversed: f64 = row[2].parse().unwrap();
        assert!(
            reversed < ordered * 0.8,
            "paper: reversed queues decrease performance ({ordered} vs {reversed})"
        );
    }

    #[test]
    fn hash_designs_all_correct_and_two_level_wins_on_duplicates() {
        let rep = hash_design(256, 3);
        assert_eq!(rep.rows.len(), 5);
    }

    #[test]
    fn window_sweep_renders() {
        let rep = window_sweep(256, &[32, 64], 3);
        assert_eq!(rep.rows.len(), 2);
    }
}
