//! Fault-tolerance sweep for the sharded streaming service: crash rate
//! × checkpoint interval, against the same matrix-engine, 8-shard,
//! 10 M msgs/s configuration [`super::shard_scaling`] benchmarks
//! fault-free.
//!
//! Two numbers per point:
//!
//! * **recovery latency** — crash-to-service-resumed, from the
//!   per-shard `recovery_seconds` histograms (restart latency plus
//!   journal replay, so it grows with the checkpoint interval);
//! * **goodput retained** — sustained rate under faults over the plain
//!   (no fault-tolerance) baseline's sustained rate. The crash-free
//!   point isolates the checkpoint tax; the CI smoke job asserts it
//!   stays within a few percent of `BENCH_service.json`.
//!
//! The sweep is exported as `BENCH_recovery.json`; a traced single-crash
//! run is exported as `RECOVERY_trace.json` so the crash, recovery,
//! checkpoint and failover spans are visible on the shard timelines.

use gpu_msg::{
    FaultPlan, FaultRates, FaultTolerance, RecoveryConfig, ServiceEngine, ShardEnginePolicy,
    ShardedMatchService, ShardedServiceConfig, ShardedServiceReport, SupervisorConfig,
};
use serde::{Deserialize, Serialize};
use simt_sim::GpuGeneration;

use crate::table::Report;

/// Crash rates swept (crashes per simulated second across the service;
/// at the 2 ms default duration: 0, 1 and 3 crashes).
pub const DEFAULT_CRASH_RATES: [f64; 3] = [0.0, 500.0, 1500.0];

/// Checkpoint intervals swept (seconds).
pub const DEFAULT_CKPT_INTERVALS: [f64; 3] = [100e-6, 250e-6, 500e-6];

/// Offered load — [`super::shard_scaling::DEFAULT_OFFERED`], past the
/// single matrix kernel's ceiling.
pub const DEFAULT_OFFERED: f64 = 10.0e6;

/// Shard count matching the best matrix row of the shard-scaling sweep.
pub const DEFAULT_SHARDS: usize = 8;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Crashes per simulated second the fault plan injected.
    pub crash_rate: f64,
    /// Checkpoint interval (seconds).
    pub checkpoint_interval: f64,
    /// Outcome (aggregate + per-shard metrics).
    pub report: ShardedServiceReport,
}

/// Summary row of one sweep point, as persisted in
/// `BENCH_recovery.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Crashes per simulated second the fault plan injected.
    pub crash_rate: f64,
    /// Checkpoint interval (microseconds).
    pub checkpoint_interval_us: f64,
    /// Crashes that actually landed.
    pub crashes: u64,
    /// Completed checkpoint/journal recoveries.
    pub recoveries: u64,
    /// Supervisor failover reroutes.
    pub failovers: u64,
    /// Periodic snapshots taken across shards.
    pub checkpoints: u64,
    /// Journal entries replayed during recoveries.
    pub journal_replayed: u64,
    /// Re-matched entries suppressed at commit (exactly-once).
    pub replay_duplicates: u64,
    /// Messages shed by deadline enforcement.
    pub shed: u64,
    /// Aggregate matched messages per simulated second.
    pub sustained_rate: f64,
    /// `sustained_rate` over the plain no-fault-tolerance baseline.
    pub goodput_retained: f64,
    /// Mean crash-to-service-resumed latency (microseconds; 0 when no
    /// crash landed).
    pub recovery_latency_mean_us: f64,
    /// Worst crash-to-service-resumed latency (microseconds).
    pub recovery_latency_max_us: f64,
    /// Device barrier-stall cycles over total cycles, summed across
    /// shards — the stall class recovery pressure inflates first, and
    /// the one the `obs_report --check` regression gate watches.
    pub barrier_stall_fraction: f64,
}

/// The whole artefact: baseline context plus one summary per point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryBench {
    /// Engine label of the swept configuration.
    pub engine: String,
    /// Shard count of the swept configuration.
    pub shards: u64,
    /// Offered load (messages/s).
    pub offered_rate: f64,
    /// Simulated duration (seconds).
    pub duration: f64,
    /// Sustained rate of the plain run with no fault tolerance attached
    /// — directly comparable to the matrix row of `BENCH_service.json`.
    pub baseline_sustained_rate: f64,
    /// Barrier-stall fraction of the same plain run, the reference the
    /// per-point [`PointSummary::barrier_stall_fraction`] is read
    /// against.
    pub baseline_barrier_stall_fraction: f64,
    /// One row per sweep point, crash rate major, interval minor.
    pub points: Vec<PointSummary>,
}

fn base_cfg(seed: u64) -> ShardedServiceConfig {
    ShardedServiceConfig {
        shards: DEFAULT_SHARDS,
        arrival_rate: DEFAULT_OFFERED,
        duration: 0.002,
        policy: ShardEnginePolicy::Fixed(ServiceEngine::Matrix),
        seed,
        ..Default::default()
    }
}

/// Run the sweep on the GTX 1080. The baseline (first return) attaches
/// no fault tolerance at all; every sweep point carries checkpoints and
/// a default supervisor, plus `round(crash_rate * duration)` crashes at
/// seeded-random times and shards.
pub fn run(
    crash_rates: &[f64],
    ckpt_intervals: &[f64],
    seed: u64,
) -> (ShardedServiceReport, Vec<Point>) {
    let cfg = base_cfg(seed);
    let baseline = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg).run();
    let mut points = Vec::new();
    for (i, &crash_rate) in crash_rates.iter().enumerate() {
        for (j, &checkpoint_interval) in ckpt_intervals.iter().enumerate() {
            let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg);
            svc.set_fault_tolerance(Some(FaultTolerance {
                plan: FaultPlan::random(
                    seed.wrapping_add((i * ckpt_intervals.len() + j) as u64),
                    cfg.shards,
                    cfg.duration,
                    &FaultRates {
                        crash_rate,
                        ..Default::default()
                    },
                ),
                recovery: RecoveryConfig {
                    checkpoint_interval,
                    ..Default::default()
                },
                supervisor: Some(SupervisorConfig::default()),
            }));
            points.push(Point {
                crash_rate,
                checkpoint_interval,
                report: svc.run(),
            });
        }
    }
    (baseline, points)
}

/// Barrier-stall cycles over total cycles, summed across shards.
fn barrier_stall_fraction(report: &ShardedServiceReport) -> f64 {
    let cycles: u64 = report.metrics.shards.iter().map(|s| s.profile.cycles).sum();
    let barrier: u64 = report
        .metrics
        .shards
        .iter()
        .map(|s| s.profile.stall_barrier)
        .sum();
    if cycles == 0 {
        0.0
    } else {
        barrier as f64 / cycles as f64
    }
}

fn summarize(baseline: &ShardedServiceReport, p: &Point) -> PointSummary {
    let m = &p.report.metrics;
    let (lat_sum, lat_count, lat_max) =
        m.shards.iter().fold((0.0, 0u64, 0.0f64), |(s, c, x), sh| {
            (
                s + sh.recovery_seconds.sum,
                c + sh.recovery_seconds.count,
                x.max(sh.recovery_seconds.max),
            )
        });
    PointSummary {
        crash_rate: p.crash_rate,
        checkpoint_interval_us: p.checkpoint_interval * 1e6,
        crashes: m.total_crashes,
        recoveries: m.total_recoveries,
        failovers: m.total_failovers,
        checkpoints: m.shards.iter().map(|s| s.checkpoints).sum(),
        journal_replayed: m.shards.iter().map(|s| s.journal_replayed).sum(),
        replay_duplicates: m.shards.iter().map(|s| s.replay_duplicates).sum(),
        shed: m.total_shed,
        sustained_rate: m.sustained_rate,
        goodput_retained: m.sustained_rate / baseline.metrics.sustained_rate,
        recovery_latency_mean_us: if lat_count == 0 {
            0.0
        } else {
            lat_sum / lat_count as f64 * 1e6
        },
        recovery_latency_max_us: lat_max * 1e6,
        barrier_stall_fraction: barrier_stall_fraction(&p.report),
    }
}

/// Fold the sweep into the persisted artefact.
pub fn bench(baseline: &ShardedServiceReport, points: &[Point]) -> RecoveryBench {
    RecoveryBench {
        engine: "matrix".to_string(),
        shards: DEFAULT_SHARDS as u64,
        offered_rate: DEFAULT_OFFERED,
        duration: baseline.metrics.duration,
        baseline_sustained_rate: baseline.metrics.sustained_rate,
        baseline_barrier_stall_fraction: barrier_stall_fraction(baseline),
        points: points.iter().map(|p| summarize(baseline, p)).collect(),
    }
}

/// Render the sweep as a table.
pub fn report(baseline: &ShardedServiceReport, points: &[Point]) -> Report {
    let mut r = Report::new(
        format!(
            "Recovery scaling: crash rate x checkpoint interval, matrix@{DEFAULT_SHARDS}shards, \
             {:.0} M msgs/s offered, GTX 1080",
            DEFAULT_OFFERED / 1e6
        ),
        &[
            "crash_rate",
            "ckpt_us",
            "crashes",
            "recoveries",
            "replayed",
            "dups",
            "goodput_%",
            "rec_mean_us",
            "rec_max_us",
        ],
    );
    for p in points {
        let s = summarize(baseline, p);
        r.push(vec![
            format!("{:.0}", s.crash_rate),
            format!("{:.0}", s.checkpoint_interval_us),
            s.crashes.to_string(),
            s.recoveries.to_string(),
            s.journal_replayed.to_string(),
            s.replay_duplicates.to_string(),
            format!("{:.1}", s.goodput_retained * 100.0),
            format!("{:.1}", s.recovery_latency_mean_us),
            format!("{:.1}", s.recovery_latency_max_us),
        ]);
    }
    r
}

/// The JSON artefact (`BENCH_recovery.json`).
pub fn metrics_json(baseline: &ShardedServiceReport, points: &[Point]) -> String {
    serde::json::to_string_pretty(&bench(baseline, points))
}

/// A traced run with one mid-run crash under the default supervisor,
/// exported as Chrome `trace_event` JSON (`RECOVERY_trace.json`): the
/// crash instant, the recovery span, the periodic checkpoints and any
/// failover markers all land on the shard timelines.
pub fn trace_json(seed: u64) -> String {
    let cfg = ShardedServiceConfig {
        trace: true,
        ..base_cfg(seed)
    };
    let mut svc = ShardedMatchService::new(GpuGeneration::PascalGtx1080, cfg);
    svc.set_fault_tolerance(Some(FaultTolerance {
        plan: FaultPlan::random(
            seed,
            cfg.shards,
            cfg.duration,
            &FaultRates {
                crash_rate: 500.0,
                ..Default::default()
            },
        ),
        recovery: RecoveryConfig::default(),
        supervisor: Some(SupervisorConfig::default()),
    }));
    svc.run();
    svc.trace_json().expect("tracing was enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_free_sweep_matches_the_plain_baseline() {
        let (baseline, points) = run(&[0.0], &[250e-6], 5);
        let s = summarize(&baseline, &points[0]);
        assert_eq!(s.crashes, 0);
        assert!(s.checkpoints > 0, "checkpoints must run even crash-free");
        assert!(
            (s.goodput_retained - 1.0).abs() < 0.05,
            "checkpointing should cost a few percent at most: {}",
            s.goodput_retained
        );
    }

    #[test]
    fn crashes_cost_goodput_and_record_recovery_latency() {
        let (baseline, points) = run(&[1500.0], &[250e-6], 5);
        let s = summarize(&baseline, &points[0]);
        assert_eq!(s.crashes, 3, "round(1500 * 0.002)");
        assert_eq!(s.recoveries, s.crashes, "every crash must recover");
        assert!(
            s.recovery_latency_mean_us >= RecoveryConfig::default().restart_latency * 1e6,
            "recovery cannot beat the restart latency: {}",
            s.recovery_latency_mean_us
        );
        // At this offered load the shards have headroom, so short
        // outages are absorbed: the backlog queued during the ~60 us
        // of downtime is caught up and goodput stays near the baseline
        // (the sweep's interesting finding). It must not exceed it by
        // more than measurement noise, nor collapse.
        assert!(
            (0.90..1.05).contains(&s.goodput_retained),
            "three short outages across 8 shards with headroom should be absorbed: {s:?}"
        );
        assert!(
            s.replay_duplicates > 0,
            "a crash after commits must force suppressed re-matches: {s:?}"
        );
    }

    #[test]
    fn bench_artefact_round_trips_and_orders_points() {
        let (baseline, points) = run(&[0.0, 1500.0], &[250e-6], 5);
        let json = metrics_json(&baseline, &points);
        let back: RecoveryBench = serde::json::from_str(&json).expect("artefact must parse back");
        assert_eq!(back, bench(&baseline, &points));
        assert_eq!(back.points.len(), 2);
        assert!(back.points[0].crash_rate < back.points[1].crash_rate);
        assert!(back.baseline_sustained_rate > 0.0);
        assert!((0.0..=1.0).contains(&back.baseline_barrier_stall_fraction));
        for p in &back.points {
            assert!(
                p.barrier_stall_fraction > 0.0,
                "busy matrix kernels always report some barrier stall: {p:?}"
            );
        }
    }

    #[test]
    fn trace_carries_the_fault_tolerance_spans() {
        let json = trace_json(5);
        for cat in ["crash", "recovery", "checkpoint"] {
            assert!(
                json.contains(&format!("\"cat\":\"{cat}\"")),
                "missing {cat}"
            );
        }
    }
}
