//! Criterion bench: the native CPU list-matching baseline — the numbers
//! behind Section II-C (≈30 M matches/s short queues, < 5 M beyond 512).
//!
//! This is real silicon, not simulation: the paper's structural claim is
//! that list traversal collapses with queue depth, and this bench shows
//! it on whatever host runs it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg_match::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn bench_cpu_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_list_matcher");
    for len in [16usize, 128, 512, 2048] {
        let envelopes: Vec<Envelope> = (0..len)
            .map(|i| Envelope::new((i % 997) as u32, (i / 997) as u32, 0))
            .collect();
        let mut order: Vec<usize> = (0..len).collect();
        order.shuffle(&mut StdRng::seed_from_u64(7));
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(
            BenchmarkId::new("random_posts", len),
            &(envelopes.clone(), order.clone()),
            |b, (envs, ord)| {
                b.iter(|| {
                    let mut m = ListMatcher::with_stats(false);
                    for e in envs {
                        m.arrive(*e);
                    }
                    let mut matched = 0usize;
                    for &i in ord {
                        let e = &envs[i];
                        if m.post(RecvRequest::exact(e.src, e.tag, 0)).is_some() {
                            matched += 1;
                        }
                    }
                    matched
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("fifo_posts", len),
            &envelopes,
            |b, envs| {
                b.iter(|| {
                    let mut m = ListMatcher::with_stats(false);
                    for e in envs {
                        m.arrive(*e);
                    }
                    let mut matched = 0usize;
                    for e in envs {
                        if m.post(RecvRequest::exact(e.src, e.tag, 0)).is_some() {
                            matched += 1;
                        }
                    }
                    matched
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_cpu_list);
criterion_main!(benches);
