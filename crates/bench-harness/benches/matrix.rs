//! Criterion bench: the MPI-compliant matrix matcher (native throughput
//! of the simulator executing it), with pipelining and window ablations.
//!
//! The paper's matches/s figures come from *simulated* device time (see
//! the `figure4` binary); these benches track the cost of running the
//! reproduction itself and the relative effect of the ablations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix_matcher");
    g.sample_size(10);
    for len in [64usize, 256, 1024] {
        let w = WorkloadSpec::fully_matching(len, 7).generate();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("pipelined", len), &w, |b, w| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs)
            })
        });
        g.bench_with_input(BenchmarkId::new("unpipelined", len), &w, |b, w| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                MatrixMatcher {
                    disable_pipelining: true,
                    ..Default::default()
                }
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("matrix_window_ablation");
    g.sample_size(10);
    let w = WorkloadSpec::fully_matching(512, 7).generate();
    for window in [32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(window), &w, |b, w| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                MatrixMatcher {
                    window,
                    ..Default::default()
                }
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
