//! Criterion bench: the two-level hash matcher, with a duplicate-density
//! ablation (the Figure 6(a) ↔ 6(b) connection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_matcher");
    g.sample_size(10);
    for len in [1024usize, 4096] {
        let w = WorkloadSpec::unique_tuples(len, 7).generate();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("unique", len), &w, |b, w| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                HashMatcher::default()
                    .match_batch(&mut gpu, &w.msgs, &w.reqs)
                    .unwrap()
            })
        });
    }
    // Duplicate-heavy ablation: 16 tuples over 1024 messages.
    let dup = WorkloadSpec {
        len: 1024,
        peers: 4,
        tags: 4,
        seed: 7,
        ..Default::default()
    }
    .generate();
    g.throughput(Throughput::Elements(1024));
    g.bench_with_input(BenchmarkId::new("duplicates", 1024), &dup, |b, w| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
            HashMatcher::default()
                .match_batch(&mut gpu, &w.msgs, &w.reqs)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
