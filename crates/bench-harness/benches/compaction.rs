//! Criterion bench: queue compaction — ordered single-chain vs.
//! region-parallel moves (the cost the *no unexpected messages*
//! relaxation removes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg_match::compaction::compact_queue_regions;
use simt_sim::{Gpu, GpuGeneration};

fn bench_compaction(c: &mut Criterion) {
    let mut g = c.benchmark_group("compaction");
    g.sample_size(10);
    let n = 1024usize;
    let queue: Vec<u64> = (0..n as u64).map(|i| i | (1 << 63)).collect();
    let keep: Vec<u32> = (0..n).map(|i| (i % 10 == 0) as u32).collect();
    g.throughput(Throughput::Elements(n as u64));
    for regions in [1usize, 16, 32] {
        g.bench_with_input(
            BenchmarkId::from_parameter(regions),
            &(queue.clone(), keep.clone()),
            |b, (q, k)| {
                b.iter(|| {
                    let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                    compact_queue_regions(&mut gpu, q, k, regions)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
