//! Criterion bench: the rank-partitioned matcher across queue counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

fn bench_partitioned(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioned_matcher");
    g.sample_size(10);
    let w = WorkloadSpec::fully_matching(1024, 7).generate();
    g.throughput(Throughput::Elements(1024));
    for queues in [1usize, 4, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(queues), &w, |b, w| {
            b.iter(|| {
                let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);
                PartitionedMatcher::new(queues)
                    .match_batch(&mut gpu, &w.msgs, &w.reqs)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partitioned);
criterion_main!(benches);
