//! A guided tour of Table II: the same traffic matched under every
//! relaxation level, printing what each guarantee costs.
//!
//! ```text
//! cargo run --release -p examples --bin relaxation_tour
//! ```

use msg_match::prelude::*;
use simt_sim::{Gpu, GpuGeneration};

fn main() {
    let len = 1024;
    let w = WorkloadSpec::fully_matching(len, 2026).generate();
    let mut gpu = Gpu::new(GpuGeneration::PascalGtx1080);

    println!("workload: {len} random tuples, every message has a receive\n");

    // Row 1-2: full MPI semantics — the matrix scan/reduce.
    let r = MatrixMatcher::default().match_batch(&mut gpu, &w.msgs, &w.reqs);
    println!(
        "full MPI (wildcards + ordering):      {:7.2} M matches/s   [matrix scan/reduce]",
        r.matches_per_sec / 1e6
    );
    let baseline = r.matches_per_sec;

    // Row 3-4: give up MPI_ANY_SOURCE — the rank space partitions.
    for queues in [4usize, 16] {
        let r = PartitionedMatcher::new(queues)
            .match_batch(&mut gpu, &w.msgs, &w.reqs)
            .expect("workload has no wildcards");
        println!(
            "no source wildcard ({queues:2} queues):      {:7.2} M matches/s   [{:.1}x]",
            r.matches_per_sec / 1e6,
            r.matches_per_sec / baseline
        );
    }

    // Row 5-6: give up ordering — hashing takes over. Tags must now
    // uniquely identify messages (BSP discipline).
    let r = HashMatcher::default()
        .match_batch(&mut gpu, &w.msgs, &w.reqs)
        .expect("workload has no wildcards");
    println!(
        "no ordering (two-level hash):         {:7.2} M matches/s   [{:.0}x]",
        r.matches_per_sec / 1e6,
        r.matches_per_sec / baseline
    );

    // The engine can also decide for itself.
    let engine = MatchEngine::default();
    for cfg in [
        RelaxationConfig::FULL_MPI,
        RelaxationConfig::NO_WILDCARDS,
        RelaxationConfig::UNORDERED,
    ] {
        let (choice, r) = engine
            .match_batch(&mut gpu, cfg, &w.msgs, &w.reqs)
            .expect("workload satisfies every level");
        println!(
            "auto under {:?}: chose {:?} → {:.2} M matches/s",
            cfg,
            choice,
            r.matches_per_sec / 1e6
        );
    }
    println!("\nEvery engine produced a valid matching of all {len} messages. ok");
}
