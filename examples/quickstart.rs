//! Quickstart: two GPUs exchanging a message over the simulated global
//! address space, with fully MPI-compliant matching.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use bytes::Bytes;
use gpu_msg::Domain;
use msg_match::RecvRequest;
use simt_sim::GpuGeneration;

fn main() {
    // A node with two GPUs; each runs a resident communication kernel
    // using the MPI-compliant matrix matcher.
    let node = Domain::full_mpi(2, GpuGeneration::PascalGtx1080);

    // GPU 0 sends — a remote write into GPU 1's message queue.
    node.send(
        0,
        1,
        /*tag*/ 7,
        /*comm*/ 0,
        Bytes::from_static(b"hello, peer GPU"),
    );

    // GPU 1 receives: posting a matching request and progressing the
    // communication kernel until it completes.
    let msg = node
        .recv_blocking(1, RecvRequest::exact(/*src*/ 0, /*tag*/ 7, /*comm*/ 0), 8)
        .expect("delivery");

    println!(
        "GPU 1 received {:?} from rank {}",
        msg.payload, msg.envelope.src
    );
    let stats = node.stats(1);
    println!(
        "communication kernel: {} matches in {} simulated cycles ({:.2} µs on a GTX 1080)",
        stats.matches,
        stats.kernel_cycles,
        stats.kernel_seconds * 1e6
    );
    assert_eq!(&msg.payload[..], b"hello, peer GPU");
    println!("ok");
}
