//! Trace explorer: generate, serialise, re-read and analyse any of the
//! twelve modelled DOE proxy applications.
//!
//! ```text
//! cargo run --release -p examples --bin trace_explorer -- Nekbone
//! cargo run --release -p examples --bin trace_explorer -- LULESH 0.5
//! ```
//!
//! Arguments: application name (default: LULESH), an optional queue
//! depth scale (default 1.0), and an optional path to save the generated
//! trace as an SDTF file (re-read before analysis to prove the format).

use proxy_traces::{
    analyze, generate, read_trace, read_trace_file, write_trace, write_trace_file, AppModel,
    GenOptions,
};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "LULESH".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let save: Option<std::path::PathBuf> = args.next().map(Into::into);

    let Some(model) = AppModel::by_name(&name) else {
        eprintln!("unknown application '{name}'. Known:");
        for m in AppModel::all() {
            eprintln!("  {}", m.name);
        }
        std::process::exit(1);
    };

    println!("generating {} (scale {scale})…", model.name);
    let trace = generate(
        &model,
        GenOptions {
            depth_scale: scale,
            ranks: None,
            seed: 0xD0E,
            rank0_funnel: 0,
        },
    );
    trace.validate().expect("generated trace is well formed");

    let bytes = write_trace(&trace);
    println!(
        "trace: {} events, {} sends, {} bytes serialised (SDTF)",
        trace.events.len(),
        trace.send_count(),
        bytes.len()
    );
    let trace = if let Some(path) = save {
        write_trace_file(&trace, &path).expect("save trace");
        println!("saved to {}", path.display());
        read_trace_file(&path).expect("re-read saved trace")
    } else {
        read_trace(bytes).expect("round trip")
    };

    let a = analyze(&trace);
    println!("— analysis —");
    println!("ranks:              {}", a.ranks);
    println!("messages:           {}", a.messages);
    println!("communicators:      {}", a.communicators);
    println!("peers (median):     {:.0}", a.peers.median);
    println!(
        "distinct tags:      {} ({} bits needed)",
        a.distinct_tags,
        a.tag_bits()
    );
    println!("ANY_SOURCE posts:   {}", a.src_wildcards);
    println!("ANY_TAG posts:      {}", a.tag_wildcards);
    println!("unexpected arrivals: {:.1}%", a.unexpected_pct);
    println!(
        "UMQ depth: min {:.0} / q1 {:.0} / median {:.0} / mean {:.0} / q3 {:.0} / max {:.0}",
        a.umq_depth.min,
        a.umq_depth.q1,
        a.umq_depth.median,
        a.umq_depth.mean,
        a.umq_depth.q3,
        a.umq_depth.max
    );
    println!(
        "PRQ depth: min {:.0} / q1 {:.0} / median {:.0} / mean {:.0} / q3 {:.0} / max {:.0}",
        a.prq_depth.min,
        a.prq_depth.q1,
        a.prq_depth.median,
        a.prq_depth.mean,
        a.prq_depth.q3,
        a.prq_depth.max
    );
    println!("mean UMQ search len: {:.1}", a.mean_search_len);
    println!("tuple uniqueness:    {:.2}%", a.tuple_uniqueness_pct);
    println!(
        "verdict: {} for hash matching, {} queues exploitable without ANY_SOURCE",
        if a.tuple_uniqueness_pct < 10.0 {
            "friendly"
        } else {
            "hostile"
        },
        a.peers.median as u32
    );
}
