//! Distributed conjugate-gradient solve (a MiniFE-style workload) on the
//! message-passing runtime under the *no source wildcard* relaxation —
//! the rank-partitioned matcher the paper recommends for exactly this
//! class of applications (Table I shows MiniFE needs only exact-source
//! receives for its halo exchange; the rare ANY_SOURCE it posts is an
//! initialization-phase convenience the CPU can keep).
//!
//! Solves the 1D Poisson system `A x = b` (tridiagonal Laplacian) with
//! the domain split across ranks; each mat-vec exchanges one boundary
//! element with each neighbour. Residual is checked at the end.
//!
//! ```text
//! cargo run --release -p examples --bin sparse_cg
//! ```

use bytes::Bytes;
use gpu_msg::collectives::ring_allreduce_sum;
use gpu_msg::{Domain, MatcherKind};
use msg_match::{RecvRequest, RelaxationConfig};
use parking_lot::Mutex;
use simt_sim::GpuGeneration;

const RANKS: u32 = 4;
const LOCAL: usize = 16; // unknowns per rank
const N: usize = RANKS as usize * LOCAL;
const MAX_ITERS: usize = 200;
const TOL: f64 = 1e-10;

/// Exchange boundary values of `v` with both neighbours and return
/// (left_ghost, right_ghost). Tags: 0 = value travelling right→ (to the
/// right neighbour), 1 = travelling left.
fn exchange(node: &Domain, rank: u32, v: &[f64]) -> Result<(f64, f64), String> {
    let n = node.ranks();
    if rank > 0 {
        node.send(
            rank,
            rank - 1,
            1,
            0,
            Bytes::from(v[0].to_le_bytes().to_vec()),
        );
    }
    if rank + 1 < n {
        node.send(
            rank,
            rank + 1,
            0,
            0,
            Bytes::from(v[LOCAL - 1].to_le_bytes().to_vec()),
        );
    }
    let mut left = 0.0;
    let mut right = 0.0;
    if rank > 0 {
        let m = node.recv_blocking(rank, RecvRequest::exact(rank - 1, 0, 0), 256)?;
        left = f64::from_le_bytes(m.payload[..8].try_into().expect("8 bytes"));
    }
    if rank + 1 < n {
        let m = node.recv_blocking(rank, RecvRequest::exact(rank + 1, 1, 0), 256)?;
        right = f64::from_le_bytes(m.payload[..8].try_into().expect("8 bytes"));
    }
    Ok((left, right))
}

/// y = A v for the 1D Laplacian (2 on the diagonal, -1 off-diagonal),
/// using ghost cells from the neighbours.
fn matvec(node: &Domain, rank: u32, v: &[f64]) -> Result<Vec<f64>, String> {
    let (left, right) = exchange(node, rank, v)?;
    let mut y = vec![0.0; LOCAL];
    for i in 0..LOCAL {
        let vm = if i == 0 { left } else { v[i - 1] };
        let vp = if i == LOCAL - 1 { right } else { v[i + 1] };
        y[i] = 2.0 * v[i] - vm - vp;
    }
    Ok(y)
}

fn main() {
    let node = Domain::new(
        RANKS,
        GpuGeneration::PascalGtx1080,
        MatcherKind::Partitioned(4),
        RelaxationConfig::NO_WILDCARDS,
    );

    // b = A * x_true, with x_true[i] = sin-ish ramp, so we know the answer.
    let x_true: Vec<f64> = (0..N).map(|i| ((i as f64) * 0.1).sin()).collect();
    // Global rhs computed sequentially.
    let mut b_global = vec![0.0; N];
    for i in 0..N {
        let vm = if i == 0 { 0.0 } else { x_true[i - 1] };
        let vp = if i == N - 1 { 0.0 } else { x_true[i + 1] };
        b_global[i] = 2.0 * x_true[i] - vm - vp;
    }

    let xs: Vec<Mutex<Vec<f64>>> = (0..RANKS).map(|_| Mutex::new(vec![0.0; LOCAL])).collect();
    let final_res = Mutex::new(0.0f64);
    let iters_used = Mutex::new(0usize);

    crossbeam::scope(|s| {
        // The CG scalars are reduced over the *same* messaging runtime:
        // a ring all-reduce whose every hop is a matched message. Tag
        // namespaces per reduction site keep the collective traffic away
        // from the halo tags; per-pair ordering makes reuse across
        // iterations sound.
        let node_ref = &node;
        let allreduce = move |rank: u32, value: f64, site: u32| -> f64 {
            ring_allreduce_sum(node_ref, rank, value, 900 + site * 16)
                .expect("allreduce over the runtime")
        };

        for rank in 0..RANKS {
            let node = &node;
            let xs = &xs;
            let b = b_global[rank as usize * LOCAL..(rank as usize + 1) * LOCAL].to_vec();
            let final_res = &final_res;
            let iters_used = &iters_used;
            s.spawn(move |_| {
                let mut x = vec![0.0f64; LOCAL];
                let mut r = b.clone();
                let mut p = r.clone();
                let mut rs_old = allreduce(rank, r.iter().map(|v| v * v).sum(), 0);
                for it in 0..MAX_ITERS {
                    let ap = matvec(node, rank, &p).expect("matvec exchange");
                    let p_ap = allreduce(rank, p.iter().zip(&ap).map(|(a, c)| a * c).sum(), 1);
                    let alpha = rs_old / p_ap;
                    for i in 0..LOCAL {
                        x[i] += alpha * p[i];
                        r[i] -= alpha * ap[i];
                    }
                    let rs_new = allreduce(rank, r.iter().map(|v| v * v).sum(), 2);
                    if rs_new.sqrt() < TOL {
                        if rank == 0 {
                            *final_res.lock() = rs_new.sqrt();
                            *iters_used.lock() = it + 1;
                        }
                        break;
                    }
                    let beta = rs_new / rs_old;
                    for i in 0..LOCAL {
                        p[i] = r[i] + beta * p[i];
                    }
                    rs_old = rs_new;
                    if it + 1 == MAX_ITERS && rank == 0 {
                        *final_res.lock() = rs_new.sqrt();
                        *iters_used.lock() = MAX_ITERS;
                    }
                }
                *xs[rank as usize].lock() = x;
            });
        }
    })
    .expect("ranks join");

    // Verify against the known solution.
    let mut max_err = 0.0f64;
    for rank in 0..RANKS {
        let x = xs[rank as usize].lock();
        for i in 0..LOCAL {
            let want = x_true[rank as usize * LOCAL + i];
            max_err = max_err.max((x[i] - want).abs());
        }
    }
    println!(
        "CG converged in {} iterations, residual {:.2e}, max error {max_err:.2e}",
        *iters_used.lock(),
        *final_res.lock()
    );
    assert!(max_err < 1e-6, "CG must recover the manufactured solution");

    let matches: u64 = (0..RANKS).map(|r| node.stats(r).matches).sum();
    let cycles: u64 = (0..RANKS).map(|r| node.stats(r).kernel_cycles).sum();
    println!(
        "halo traffic: {matches} messages matched by the partitioned matcher ({cycles} cycles)"
    );
    println!("ok");
}
