//! Shared helpers for the example applications.

/// Map a 2D grid coordinate to a rank, row-major.
pub fn rank_of(x: usize, y: usize, nx: usize) -> u32 {
    (y * nx + x) as u32
}

/// Inverse of [`rank_of`].
pub fn coord_of(rank: u32, nx: usize) -> (usize, usize) {
    (rank as usize % nx, rank as usize / nx)
}

/// Serialise a row of f64 cells into bytes (little-endian).
pub fn pack_f64(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Deserialise bytes back into f64 cells.
pub fn unpack_f64(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_round_trip() {
        for r in 0..12u32 {
            let (x, y) = coord_of(r, 4);
            assert_eq!(rank_of(x, y, 4), r);
        }
    }

    #[test]
    fn f64_round_trip() {
        let v = vec![1.5, -2.25, 0.0, 1e300];
        assert_eq!(unpack_f64(&pack_f64(&v)), v);
    }
}
