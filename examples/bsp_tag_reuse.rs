//! BSP tag reuse under the *no ordering* relaxation.
//!
//! The paper's final relaxation drops in-order delivery so the two-level
//! hash table can match at ~500 M matches/s. The cost: "the tag has to
//! be used to uniquely identify messages from the same source" — and in
//! a BSP program "tags can be reused after synchronization". This example
//! demonstrates exactly that discipline: within a superstep every message
//! carries a unique (src, tag) tuple; after the barrier the whole tag
//! space is reused. A shifting ring exchange with per-superstep
//! checksums verifies no message is lost or misdelivered even though the
//! matcher is free to reorder.
//!
//! ```text
//! cargo run --release -p examples --bin bsp_tag_reuse
//! ```

use bytes::Bytes;
use gpu_msg::{BspProgram, Domain, MatcherKind};
use msg_match::{RecvRequest, RelaxationConfig};
use simt_sim::GpuGeneration;

const RANKS: u32 = 6;
const SUPERSTEPS: u32 = 4;
const MSGS_PER_PEER: u32 = 8;

fn main() {
    let node = Domain::new(
        RANKS,
        GpuGeneration::PascalGtx1080,
        MatcherKind::Hash,
        RelaxationConfig::UNORDERED,
    );
    let bsp = BspProgram::new(&node);

    for step in 0..SUPERSTEPS {
        bsp.superstep(|rank, node| {
            let n = node.ranks();
            // Each rank scatters MSGS_PER_PEER messages to the next two
            // ranks; the tag encodes (peer slot, sequence) so tuples are
            // unique within the superstep — and identical across
            // supersteps (reuse!).
            for hop in 1..=2u32 {
                let dst = (rank + hop) % n;
                for seq in 0..MSGS_PER_PEER {
                    let tag = hop * 100 + seq;
                    let val = (step * 1000 + rank * 10 + seq) as u64;
                    node.send(rank, dst, tag, 0, Bytes::from(val.to_le_bytes().to_vec()));
                }
            }
            // Receive from the two ranks behind us, in *reverse* tag
            // order — delivery order is irrelevant under the relaxation.
            let mut checksum = 0u64;
            for hop in 1..=2u32 {
                let src = (rank + n - hop) % n;
                for seq in (0..MSGS_PER_PEER).rev() {
                    let tag = hop * 100 + seq;
                    let m = node.recv_blocking(rank, RecvRequest::exact(src, tag, 0), 256)?;
                    let val = u64::from_le_bytes(m.payload[..8].try_into().expect("8 bytes"));
                    let want = (step * 1000 + src * 10 + seq) as u64;
                    if val != want {
                        return Err(format!(
                            "superstep {step}: got {val} from rank {src} tag {tag}, wanted {want}"
                        ));
                    }
                    checksum = checksum.wrapping_add(val);
                }
            }
            let _ = checksum;
            Ok(())
        })
        .unwrap_or_else(|e| panic!("superstep {step}: {e}"));
    }

    let matches: u64 = (0..RANKS).map(|r| node.stats(r).matches).sum();
    println!(
        "{SUPERSTEPS} supersteps × {RANKS} ranks × {} msgs: {matches} matches, all verified \
         out-of-order with reused tags",
        2 * MSGS_PER_PEER
    );
    println!("ok");
}
