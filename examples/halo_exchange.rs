//! Halo exchange: a 2D Jacobi heat-diffusion stencil distributed over a
//! grid of GPUs — the nearest-neighbour pattern that dominates the
//! paper's proxy applications (LULESH, CNS, MultiGrid…).
//!
//! Each GPU owns an interior tile and exchanges one-cell-deep halos with
//! its four neighbours every iteration through the message-passing
//! runtime (full MPI semantics, matrix matcher). The distributed result
//! is verified against a sequential solver.
//!
//! ```text
//! cargo run --release -p examples --bin halo_exchange
//! ```

use bytes::Bytes;
use example_support::{pack_f64, rank_of, unpack_f64};
use gpu_msg::{BspProgram, Domain};
use msg_match::RecvRequest;
use parking_lot::Mutex;
use simt_sim::GpuGeneration;

const NX: usize = 3; // rank grid
const NY: usize = 3;
const TILE: usize = 8; // interior cells per side
const STEPS: usize = 10;

/// Sequential reference: the whole (NX*TILE) × (NY*TILE) domain.
fn sequential(steps: usize) -> Vec<f64> {
    let (w, h) = (NX * TILE, NY * TILE);
    let mut grid = vec![0.0f64; w * h];
    // Hot corner cell as the initial condition.
    grid[0] = 100.0;
    for _ in 0..steps {
        let mut next = grid.clone();
        for y in 0..h {
            for x in 0..w {
                let at = |xx: isize, yy: isize| -> f64 {
                    if xx < 0 || yy < 0 || xx >= w as isize || yy >= h as isize {
                        0.0
                    } else {
                        grid[yy as usize * w + xx as usize]
                    }
                };
                let (x, y) = (x as isize, y as isize);
                next[y as usize * w + x as usize] =
                    0.2 * (at(x, y) + at(x - 1, y) + at(x + 1, y) + at(x, y - 1) + at(x, y + 1));
            }
        }
        grid = next;
    }
    grid
}

fn main() {
    let ranks = (NX * NY) as u32;
    let node = Domain::full_mpi(ranks, GpuGeneration::PascalGtx1080);
    let bsp = BspProgram::new(&node);

    // Per-rank tiles with a one-cell ghost ring: (TILE+2)^2.
    let tiles: Vec<Mutex<Vec<f64>>> = (0..ranks)
        .map(|r| {
            let mut t = vec![0.0f64; (TILE + 2) * (TILE + 2)];
            if r == 0 {
                t[TILE + 3] = 100.0; // global (0,0) lives on rank 0
            }
            Mutex::new(t)
        })
        .collect();

    let idx = |x: usize, y: usize| y * (TILE + 2) + x;

    for _step in 0..STEPS {
        bsp.superstep(|rank, node| {
            let (cx, cy) = example_support::coord_of(rank, NX);
            // 1. Send my four boundary rows/columns to the neighbours.
            //    Tags encode the *direction the data travels*.
            let tile = tiles[rank as usize].lock().clone();
            let row = |y: usize| (1..=TILE).map(|x| tile[idx(x, y)]).collect::<Vec<_>>();
            let col = |x: usize| (1..=TILE).map(|y| tile[idx(x, y)]).collect::<Vec<_>>();
            let mut expected = Vec::new();
            if cy > 0 {
                let up = rank_of(cx, cy - 1, NX);
                node.send(rank, up, 0, 0, Bytes::from(pack_f64(&row(1))));
                expected.push((up, 1u32)); // they send "down" to me
            }
            if cy + 1 < NY {
                let down = rank_of(cx, cy + 1, NX);
                node.send(rank, down, 1, 0, Bytes::from(pack_f64(&row(TILE))));
                expected.push((down, 0u32));
            }
            if cx > 0 {
                let left = rank_of(cx - 1, cy, NX);
                node.send(rank, left, 2, 0, Bytes::from(pack_f64(&col(1))));
                expected.push((left, 3u32));
            }
            if cx + 1 < NX {
                let right = rank_of(cx + 1, cy, NX);
                node.send(rank, right, 3, 0, Bytes::from(pack_f64(&col(TILE))));
                expected.push((right, 2u32));
            }

            // 2. Receive the halos.
            let mut tile = tiles[rank as usize].lock();
            for (peer, tag) in expected {
                let msg = node.recv_blocking(rank, RecvRequest::exact(peer, tag, 0), 128)?;
                let cells = unpack_f64(&msg.payload);
                match tag {
                    1 => (1..=TILE).for_each(|x| tile[idx(x, 0)] = cells[x - 1]),
                    0 => (1..=TILE).for_each(|x| tile[idx(x, TILE + 1)] = cells[x - 1]),
                    3 => (1..=TILE).for_each(|y| tile[idx(0, y)] = cells[y - 1]),
                    2 => (1..=TILE).for_each(|y| tile[idx(TILE + 1, y)] = cells[y - 1]),
                    _ => unreachable!(),
                }
            }

            // 3. Stencil update on the interior.
            let old = tile.clone();
            for y in 1..=TILE {
                for x in 1..=TILE {
                    tile[idx(x, y)] = 0.2
                        * (old[idx(x, y)]
                            + old[idx(x - 1, y)]
                            + old[idx(x + 1, y)]
                            + old[idx(x, y - 1)]
                            + old[idx(x, y + 1)]);
                }
            }
            Ok(())
        })
        .expect("superstep");
    }

    // Verify against the sequential solver.
    let reference = sequential(STEPS);
    let mut max_err = 0.0f64;
    for r in 0..ranks {
        let (cx, cy) = example_support::coord_of(r, NX);
        let tile = tiles[r as usize].lock();
        for y in 1..=TILE {
            for x in 1..=TILE {
                let gx = cx * TILE + (x - 1);
                let gy = cy * TILE + (y - 1);
                let want = reference[gy * (NX * TILE) + gx];
                max_err = max_err.max((tile[idx(x, y)] - want).abs());
            }
        }
    }
    println!("max |distributed - sequential| = {max_err:.3e}");
    assert!(max_err < 1e-12, "halo exchange must be exact");

    let total_cycles: u64 = (0..ranks).map(|r| node.stats(r).kernel_cycles).sum();
    let total_matches: u64 = (0..ranks).map(|r| node.stats(r).matches).sum();
    println!(
        "{STEPS} steps on {ranks} GPUs: {total_matches} halo messages matched, \
         {total_cycles} total communication-kernel cycles"
    );
    println!("ok");
}
