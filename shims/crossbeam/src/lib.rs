//! Offline stand-in for `crossbeam` (API subset): scoped threads over
//! `std::thread::scope`, with crossbeam's panic-to-`Err` contract.

pub use thread::scope;

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope or thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Spawn surface handed to the scope closure (and to spawned
    /// closures, which receive `&Scope` as their argument).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. An unjoined spawned-thread panic surfaces as `Err`
    /// rather than unwinding (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_share_borrows() {
        let data = [1u32, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn panic_in_unjoined_thread_becomes_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn joined_panic_is_contained() {
        let r = crate::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
            7
        });
        assert_eq!(r.unwrap(), 7);
    }
}
