//! Offline stand-in for `crossbeam` (API subset): scoped threads over
//! `std::thread::scope` with crossbeam's panic-to-`Err` contract, and
//! MPSC channels over `std::sync::mpsc` with crossbeam's
//! `bounded`/`unbounded` constructors.

pub use thread::scope;

/// Multi-producer single-consumer channels (`crossbeam-channel` API
/// subset: `bounded`, `unbounded`, cloneable senders, blocking and
/// non-blocking receives, and a draining iterator).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel; clone one per producer thread.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives.
        ///
        /// # Errors
        /// The channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Take a queued message without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when the channel is dead.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator that drains messages until every sender is
        /// dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Channel with room for `cap` in-flight messages; senders block
    /// when it is full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// Channel with no capacity bound; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope or thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    /// Spawn surface handed to the scope closure (and to spawned
    /// closures, which receive `&Scope` as their argument).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread bound to the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. An unjoined spawned-thread panic surfaces as `Err`
    /// rather than unwinding (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_share_borrows() {
        let data = [1u32, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn panic_in_unjoined_thread_becomes_err() {
        let r = crate::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fans_in_from_scoped_threads() {
        let (tx, rx) = crate::channel::bounded::<(usize, u32)>(2);
        let got = crate::scope(|s| {
            for i in 0..4usize {
                let tx = tx.clone();
                s.spawn(move |_| tx.send((i, i as u32 * 10)).unwrap());
            }
            drop(tx);
            let mut got: Vec<_> = rx.iter().collect();
            got.sort();
            got
        })
        .unwrap();
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn unbounded_try_recv_reports_empty_then_disconnected() {
        use crate::channel::TryRecvError;
        let (tx, rx) = crate::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn send_after_receiver_drop_returns_the_value() {
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(crate::channel::SendError(9)));
    }

    #[test]
    fn joined_panic_is_contained() {
        let r = crate::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
            7
        });
        assert_eq!(r.unwrap(), 7);
    }
}
