//! Offline stand-in for the `bytes` crate (API subset).
//!
//! `Bytes` is an `Arc<Vec<u8>>` — clones are cheap and the buffer is
//! immutable, which is the only contract the workspace relies on.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Bytes consumed from the front via the [`Buf`] cursor.
    offset: usize,
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer over a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
            offset: 0,
        }
    }

    /// Buffer copied from a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
            offset: 0,
        }
    }

    /// Remaining (unconsumed) length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.offset
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.offset..].to_vec()
    }

    /// Make this handle empty; other clones keep the original bytes.
    pub fn clear(&mut self) {
        self.data = Arc::new(Vec::new());
        self.offset = 0;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.offset..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            offset: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.offset];
        self.offset += 1;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.data[self.offset..self.offset + dst.len()]);
        self.offset += dst.len();
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data[self.offset..].iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer for serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            offset: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. All multi-byte accessors are
/// little-endian, matching the subset the workspace serializes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Write cursor. All multi-byte accessors are little-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16_le(0xABCD);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(0x0123456789ABCDEF);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xABCD);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le(), 0x0123456789ABCDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}
