//! JSON text rendering and parsing for [`Value`](crate::Value) trees.
//!
//! Floats are printed with Rust's shortest-round-trip formatting, so a
//! serialize → parse → deserialize cycle reproduces every `f64` exactly.

use crate::{Deserialize, Error, Serialize, Value};

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    out
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    out
}

/// Parse a JSON string into a `T`.
///
/// # Errors
/// Malformed JSON, or a tree whose shape does not match `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse a JSON string into a raw [`Value`] tree.
///
/// # Errors
/// Malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // {:?} gives the shortest string that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no inf/nan; encode as null like serde_json.
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                pad(out, depth);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                pad(out, depth);
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, Error> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek().unwrap() as char
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::custom("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!(
                "expected a JSON value at byte {start}"
            )));
        }
        let integral = !text.contains(['.', 'e', 'E']);
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(18446744073709551615)),
            ("b".into(), Value::I64(-42)),
            ("c".into(), Value::F64(0.1 + 0.2)),
            ("d".into(), Value::Str("he\"llo\nworld".into())),
            (
                "e".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("f".into(), Value::Object(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            super::render(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse_value(&text).unwrap(), v);
        // Pretty output parses to the same tree.
        let mut pretty = String::new();
        super::render(&v, &mut pretty, Some(2), 0);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_are_exact() {
        for x in [1.0e-17, std::f64::consts::PI, 1.5e300, -0.0] {
            let parsed = parse_value(&format!("{x:?}")).unwrap();
            match parsed {
                Value::F64(y) => assert_eq!(x.to_bits(), y.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_errors_cleanly() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
    }
}
