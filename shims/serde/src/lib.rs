//! Offline stand-in for `serde` (API subset).
//!
//! The real serde routes through a visitor-based data model; this shim
//! renders straight into a JSON-ish [`Value`] tree. The derive macros
//! (from the sibling `serde_derive` shim) target the same two traits, so
//! `#[derive(Serialize, Deserialize)]` plus [`json::to_string`] /
//! [`json::from_str`] round-trip any non-generic struct/enum in the
//! workspace.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (u64 range preserved exactly).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object field.
    ///
    /// # Errors
    /// Not an object, or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Look up an array element.
    ///
    /// # Errors
    /// Not an array, or the index is out of range.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::custom(format!("missing array element {i}"))),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree representation.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    ///
    /// # Errors
    /// Shape or range mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::U64(x) => *x,
                    Value::I64(x) if *x >= 0 => *x as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!(
                    "{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i64;
                if wide >= 0 { Value::U64(wide as u64) } else { Value::I64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x).map_err(|_| {
                        Error::custom(format!("{x} out of i64 range"))
                    })?,
                    other => return Err(Error::custom(format!(
                        "expected integer, found {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!(
                    "{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Real serde borrows from the input; this shim owns its `Value`
        // tree, so promote to 'static by leaking. Only static app-table
        // names deserialize through this path, so the leak is bounded.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(Error::custom(format!(
                "expected array of length {N}, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.index($n)?)?,)+))
            }
        }
    )+};
}
impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
