//! Offline stand-in for serde's derive macros.
//!
//! Parses the item token stream by hand (no `syn`), supports the shapes
//! this workspace derives on: non-generic structs (named, tuple, unit)
//! and enums (unit, tuple, and struct variants). `#[serde(...)]`
//! attributes are not supported and are rejected loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip leading `#[...]` attribute groups, panicking on `#[serde(...)]`.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> usize {
    while pos + 1 < tokens.len() && is_punct(&tokens[pos], '#') {
        if let TokenTree::Group(g) = &tokens[pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body = g.stream().to_string();
                if body.starts_with("serde") {
                    panic!("serde shim: #[serde(...)] attributes are not supported: {body}");
                }
                pos += 2;
                continue;
            }
        }
        break;
    }
    pos
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens[pos], TokenTree::Ident(i) if i.to_string() == "pub") {
        pos += 1;
        if pos < tokens.len() {
            if let TokenTree::Group(g) = &tokens[pos] {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Split a token slice at top-level commas, tracking angle-bracket depth
/// so `Foo<A, B>` stays one segment. Groups are opaque single tokens.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse the fields of a braced (named-field) body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    for segment in split_top_level_commas(&tokens) {
        if segment.is_empty() {
            continue;
        }
        let mut pos = skip_attrs(&segment, 0);
        pos = skip_vis(&segment, pos);
        match &segment[pos] {
            TokenTree::Ident(i) => names.push(i.to_string()),
            other => panic!("serde shim: expected field name, found {other}"),
        }
    }
    names
}

/// Count the fields of a parenthesised (tuple) body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level_commas(&tokens)
        .into_iter()
        .filter(|s| !s.is_empty())
        .count()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attrs(&tokens, 0);
    pos = skip_vis(&tokens, pos);
    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde shim: expected item name, found {other}"),
    };
    pos += 1;
    if pos < tokens.len() && is_punct(&tokens[pos], '<') {
        panic!("serde shim: generic types are not supported (deriving on {name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(tt) if is_punct(tt, ';') => Fields::Unit,
                other => panic!("serde shim: unsupported struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim: unsupported enum body for {name}: {other:?}"),
            };
            let body_tokens: Vec<TokenTree> = body.into_iter().collect();
            let mut variants = Vec::new();
            let mut vpos = 0usize;
            while vpos < body_tokens.len() {
                vpos = skip_attrs(&body_tokens, vpos);
                if vpos >= body_tokens.len() {
                    break;
                }
                let vname = match &body_tokens[vpos] {
                    TokenTree::Ident(i) => i.to_string(),
                    other => panic!("serde shim: expected variant name, found {other}"),
                };
                vpos += 1;
                let fields = match body_tokens.get(vpos) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        vpos += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        vpos += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                if let Some(tt) = body_tokens.get(vpos) {
                    if is_punct(tt, '=') {
                        panic!("serde shim: explicit discriminants are not supported ({name}::{vname})");
                    }
                    if is_punct(tt, ',') {
                        vpos += 1;
                    }
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde shim: cannot derive on `{other}` items"),
    }
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{pairs}]))]),",
                                pairs = pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde shim: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                        .collect();
                    format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut payload_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Fields::Tuple(1) => payload_arms.push(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(payload.index({i})?)?")
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}({})),",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(payload.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        payload_arms.push(format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Str(s) = v {{\n\
                             match s.as_str() {{ {unit} _ => {{}} }}\n\
                         }}\n\
                         if let ::serde::Value::Object(pairs) = v {{\n\
                             if pairs.len() == 1 {{\n\
                                 let payload = &pairs[0].1;\n\
                                 let _ = payload;\n\
                                 match pairs[0].0.as_str() {{ {payload_arms} _ => {{}} }}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"no variant of {name} matches {{:?}}\", v)))\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n")
            )
        }
    };
    src.parse()
        .expect("serde shim: generated Deserialize impl must parse")
}
