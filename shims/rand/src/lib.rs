//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! `StdRng` here is a SplitMix64 stream, not ChaCha12: sequences are
//! deterministic per seed and well distributed, but differ from real
//! rand 0.8. Nothing in this workspace depends on upstream sequences.

use std::ops::{Bound, RangeBounds};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (`hi` inclusive iff `inclusive`).
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo_w = lo as u64;
                let hi_w = hi as u64;
                let span = if inclusive {
                    hi_w.checked_sub(lo_w)
                        .expect("gen_range: empty range")
                        .checked_add(1)
                } else {
                    assert!(lo_w < hi_w, "gen_range: empty range");
                    Some(hi_w - lo_w)
                };
                match span {
                    // Full 64-bit span: every word is a valid sample.
                    None | Some(0) => rng.next_u64() as $t,
                    Some(s) => (lo_w + rng.next_u64() % s) as $t,
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Offset into unsigned space to avoid signed overflow.
                let off = |v: Self| (v as i64).wrapping_sub(i64::MIN) as u64;
                let lo_w = off(lo);
                let hi_w = off(hi);
                let span = if inclusive {
                    hi_w.checked_sub(lo_w)
                        .expect("gen_range: empty range")
                        .checked_add(1)
                } else {
                    assert!(lo_w < hi_w, "gen_range: empty range");
                    Some(hi_w - lo_w)
                };
                let sampled = match span {
                    None | Some(0) => rng.next_u64(),
                    Some(s) => lo_w + rng.next_u64() % s,
                };
                (sampled as i64).wrapping_add(i64::MIN) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// High-level sampling methods (blanket-implemented for every RngCore).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("gen_range requires a bounded, inclusive start")
            }
        };
        match range.end_bound() {
            Bound::Included(&x) => T::sample_single(lo, x, true, self),
            Bound::Excluded(&x) => T::sample_single(lo, x, false, self),
            Bound::Unbounded => panic!("gen_range requires a bounded end"),
        }
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: a SplitMix64 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }
}
