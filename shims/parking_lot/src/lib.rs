//! Offline stand-in for `parking_lot` (API subset): a `Mutex` whose
//! `lock()` never returns a poison error, delegating to `std::sync`.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Unwrap the value, consuming the mutex.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock. A panic while a previous holder held the lock
    /// does not poison it (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
