//! Strategies for the proptest shim: pure samplers, no shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Type-erased strategy, cloneable so `prop_oneof!` unions can hold many.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
pub struct Any<T> {
    _ty: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — sample the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _ty: PhantomData }
}

/// Integer types usable as range strategies.
pub trait RangeValue: Copy {
    /// Widen to u64 (bit-preserving for the range arithmetic).
    fn to_u64(self) -> u64;
    /// Narrow back.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "empty range strategy");
        match (hi - lo).checked_add(1) {
            Some(span) => T::from_u64(lo + rng.below(span)),
            None => T::from_u64(rng.next_u64()),
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Element-count specifier for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// Vec-of-elements strategy (see [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u16..=9).sample(&mut rng);
            assert!(w <= 9);
        }
    }

    #[test]
    fn vec_sizes_respect_the_range() {
        let mut rng = TestRng::deterministic("vec");
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 7usize);
        assert_eq!(exact.sample(&mut rng).len(), 7);
    }

    #[test]
    fn oneof_map_and_just_compose() {
        let mut rng = TestRng::deterministic("oneof");
        let strat = crate::prop_oneof![(0u32..10).prop_map(|x| x * 2), Just(99u32),];
        let mut saw_just = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                99 => saw_just = true,
                v => {
                    assert!(v < 20 && v % 2 == 0);
                    saw_even = true;
                }
            }
        }
        assert!(saw_just && saw_even);
    }
}
