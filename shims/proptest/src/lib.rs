//! Offline stand-in for `proptest` (API subset): random sampling without
//! shrinking.
//!
//! The `proptest!` macro runs each property for `ProptestConfig::cases`
//! independently drawn samples; a failing case panics with the values
//! baked into the assertion message. Supported strategies: integer
//! ranges (`a..b`, `a..=b`), `any::<T>()`, `Just`, tuples of strategies,
//! `prop_oneof![..]`, `.prop_map(..)`, and `collection::vec(..)`.

pub mod strategy;
pub mod test_runner;

/// Strategy combinators and sources, re-exported at the crate root the
/// way real proptest does for the common names.
pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (a range or an exact `usize`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds(x in 0u32..100, v in collection::vec(any::<bool>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), lhs, rhs
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Skip the current case when the assumption fails. (This shim counts a
/// skipped case as passed rather than redrawing.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniformly choose between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
