//! Test-runner plumbing for the proptest shim.

/// Per-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; kept identical so un-configured
        // blocks exercise the same case volume.
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*!` inside a case body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic sample source (SplitMix64), seeded from the test name
/// so every property has a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
