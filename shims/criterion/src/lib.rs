//! Offline stand-in for `criterion` (API subset): runs each benchmark a
//! fixed small number of iterations and prints mean wall-clock time,
//! with none of the statistics machinery. Exists so `cargo bench`
//! compiles and produces indicative numbers without network access.

use std::time::Instant;

/// Warm-up iterations before timing starts.
const WARMUP_ITERS: u64 = 2;
/// Timed iterations per benchmark.
const TIMED_ITERS: u64 = 5;

/// Prevent the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / TIMED_ITERS as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        let mut line = format!(
            "{}/{}: {:.1} ns/iter",
            self.name, id.label, b.nanos_per_iter
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if b.nanos_per_iter > 0.0 {
                line.push_str(&format!(
                    " ({:.3} M{}/s)",
                    count as f64 / b.nanos_per_iter * 1e3,
                    unit
                ));
            }
        }
        println!("{line}");
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("{}/{}: {:.1} ns/iter", self.name, name, b.nanos_per_iter);
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        println!("{}: {:.1} ns/iter", name, b.nanos_per_iter);
        self
    }
}

/// Define a benchmark group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Define `main` to run the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
