#!/usr/bin/env python3
"""Validate an exported trace document against the checked-in JSON schema.

Dependency-free: implements the small JSON Schema subset the schema
uses (type, required, properties, items, enum, pattern, allOf,
if/then), so CI needs nothing beyond the standard library.

Usage: validate_trace.py SCHEMA TRACE [TRACE...]
"""

import json
import re
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def matches(schema, value):
    """True when `value` would validate (used for `if` clauses)."""
    return not validate(schema, value, "$", [])


def validate(schema, value, path, errors):
    """Append one message per violation; returns the error list."""
    t = schema.get("type")
    if t is not None and not TYPE_CHECKS[t](value):
        errors.append(f"{path}: expected {t}, got {type(value).__name__}")
        return errors  # structure is wrong; deeper checks would throw
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match {schema['pattern']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required field {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(sub, value[key], f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(schema["items"], item, f"{path}[{i}]", errors)
    for clause in schema.get("allOf", []):
        cond = clause.get("if")
        then = clause.get("then")
        if cond is None or then is None:
            validate(clause, value, path, errors)
        elif matches(cond, value):
            validate(then, value, path, errors)
    return errors


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    status = 0
    for trace_path in argv[2:]:
        with open(trace_path, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except json.JSONDecodeError as e:
                print(f"{trace_path}: not valid JSON: {e}", file=sys.stderr)
                status = 1
                continue
        errors = validate(schema, doc, "$", [])
        if errors:
            for e in errors[:20]:
                print(f"{trace_path}: {e}", file=sys.stderr)
            if len(errors) > 20:
                print(f"{trace_path}: ... {len(errors) - 20} more", file=sys.stderr)
            status = 1
        else:
            n = len(doc.get("traceEvents", []))
            flows = sum(1 for ev in doc["traceEvents"] if ev.get("ph") in ("s", "t", "f"))
            print(f"{trace_path}: OK ({n} events, {flows} flow events)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
